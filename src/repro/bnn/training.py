"""Training loop for BNNs with latent full-precision weights.

Implements the BinaryConnect / BinaryNet training recipe the paper relies on
(Sec. II-B): parameter updates are tracked in full precision (the "latent"
weights), the forward pass binarises weights and activations, gradients flow
through the sign functions with the straight-through estimator, and latent
weights are clipped to ``[-1, 1]`` after every optimiser step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bnn.datasets import Dataset, iterate_minibatches
from repro.bnn.metrics import accuracy, cross_entropy, cross_entropy_grad
from repro.bnn.model import BNNModel
from repro.utils.rng import RngLike


class AdamOptimizer:
    """Adam optimiser operating on the layers' ``params``/``grads`` dicts."""

    def __init__(self, model: BNNModel, *, learning_rate: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.model = model
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._step_count = 0
        self._first_moment: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(value) for name, value in layer.params.items()}
            for layer in model.layers
        ]
        self._second_moment: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(value) for name, value in layer.params.items()}
            for layer in model.layers
        ]

    def step(self) -> None:
        """Apply one Adam update using the gradients stored in each layer."""
        self._step_count += 1
        bias1 = 1 - self.beta1 ** self._step_count
        bias2 = 1 - self.beta2 ** self._step_count
        for layer, moment1, moment2 in zip(
            self.model.layers, self._first_moment, self._second_moment
        ):
            for name, grad in layer.grads.items():
                if name not in layer.params:
                    continue
                moment1[name] = self.beta1 * moment1[name] + (1 - self.beta1) * grad
                moment2[name] = (
                    self.beta2 * moment2[name] + (1 - self.beta2) * grad * grad
                )
                corrected1 = moment1[name] / bias1
                corrected2 = moment2[name] / bias2
                layer.params[name] -= (
                    self.learning_rate * corrected1
                    / (np.sqrt(corrected2) + self.epsilon)
                )

    def zero_grad(self) -> None:
        """Clear the gradient buffers of every layer."""
        for layer in self.model.layers:
            layer.grads.clear()


@dataclass
class TrainingHistory:
    """Per-epoch training statistics."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Test accuracy after the last epoch (0.0 if never evaluated)."""
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


def evaluate(model: BNNModel, images: np.ndarray, labels: np.ndarray,
             *, batch_size: int = 256) -> float:
    """Inference-mode accuracy of ``model`` on a dataset split."""
    model.eval()
    predictions = []
    for batch_images, _ in iterate_minibatches(
        images, labels, batch_size, shuffle=False
    ):
        predictions.append(model.predict(batch_images))
    return accuracy(np.concatenate(predictions), labels)


def train(model: BNNModel, dataset: Dataset, *, epochs: int = 3,
          batch_size: int = 64, learning_rate: float = 1e-3,
          flatten_inputs: Optional[bool] = None, seed: RngLike = 0,
          verbose: bool = False) -> TrainingHistory:
    """Train ``model`` on ``dataset`` with the BinaryNet recipe.

    Parameters
    ----------
    flatten_inputs:
        Flatten images to vectors before feeding the model.  Defaults to
        ``True`` when the model expects 1-D inputs (MLPs) and ``False``
        otherwise.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if flatten_inputs is None:
        flatten_inputs = len(model.input_shape) == 1
    data = dataset.flattened() if flatten_inputs else dataset

    optimizer = AdamOptimizer(model, learning_rate=learning_rate)
    history = TrainingHistory()

    for epoch in range(epochs):
        model.train()
        epoch_losses = []
        epoch_correct = 0
        epoch_total = 0
        for batch_images, batch_labels in iterate_minibatches(
            data.train_images, data.train_labels, batch_size,
            shuffle=True, seed=seed + epoch if isinstance(seed, int) else seed,
        ):
            logits = model.forward(batch_images)
            loss = cross_entropy(logits, batch_labels)
            grad = cross_entropy_grad(logits, batch_labels)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()
            model.clip_latent_weights()
            epoch_losses.append(loss)
            epoch_correct += int(np.sum(np.argmax(logits, axis=1) == batch_labels))
            epoch_total += len(batch_labels)
        train_acc = epoch_correct / max(epoch_total, 1)
        test_acc = evaluate(model, data.test_images, data.test_labels)
        history.train_loss.append(float(np.mean(epoch_losses)))
        history.train_accuracy.append(train_acc)
        history.test_accuracy.append(test_acc)
        if verbose:  # pragma: no cover - console output only
            print(
                f"epoch {epoch + 1}/{epochs}: "
                f"loss={history.train_loss[-1]:.4f} "
                f"train_acc={train_acc:.3f} test_acc={test_acc:.3f}"
            )
    return history
