"""Binary Neural Network (BNN) software substrate.

This package implements, from scratch on NumPy, everything the paper's
evaluation needs from the neural-network side:

* binarisation utilities and the XNOR+Popcount identity of Eq. 1
  (:mod:`repro.bnn.binarize`, :mod:`repro.bnn.xnor_ops`),
* binary layers with latent full-precision weights and straight-through
  estimator gradients (:mod:`repro.bnn.layers`),
* a small sequential-model container (:mod:`repro.bnn.model`),
* the six MlBench-style evaluation networks — MLP-S/M/L and CNN-S/M/L —
  (:mod:`repro.bnn.networks`),
* deterministic synthetic MNIST/CIFAR-10-like datasets
  (:mod:`repro.bnn.datasets`),
* a training loop and metrics (:mod:`repro.bnn.training`,
  :mod:`repro.bnn.metrics`), and
* workload extraction used by the architecture timing/energy models
  (:mod:`repro.bnn.workload`).
"""

from repro.bnn.binarize import binarize_sign, to_bipolar, to_unipolar
from repro.bnn.layers import (
    BatchNorm,
    BinaryConv2d,
    BinaryLinear,
    Conv2d,
    Flatten,
    HardTanh,
    Layer,
    Linear,
    MaxPool2d,
    SignActivation,
)
from repro.bnn.model import BNNModel, InferenceEngine, fold_batchnorm_sign
from repro.bnn.networks import build_network, list_networks
from repro.bnn.pipeline import Stage, StreamingPipeline, plan_stages
from repro.bnn.workload import (
    LayerSpec,
    NetworkWorkload,
    extract_workload,
    get_workload,
)
from repro.bnn.xnor_ops import (
    PackedTensor,
    PackedWeights,
    SignSpec,
    binary_conv2d,
    binary_conv2d_reference,
    binary_dot,
    binary_matmul,
    binary_matmul_packed,
    binary_matmul_reference,
    choose_matmul_kernel,
    fused_conv2d_sign,
    fused_matmul_sign,
    im2col,
    pack_bipolar,
    pack_conv_weights,
    pack_linear_weights,
    packed_flatten,
    packed_maxpool2d,
    popcount,
    xnor,
    xnor_popcount,
)

__all__ = [
    "binarize_sign",
    "to_bipolar",
    "to_unipolar",
    "Layer",
    "Linear",
    "Conv2d",
    "BinaryLinear",
    "BinaryConv2d",
    "BatchNorm",
    "SignActivation",
    "HardTanh",
    "MaxPool2d",
    "Flatten",
    "BNNModel",
    "InferenceEngine",
    "fold_batchnorm_sign",
    "Stage",
    "StreamingPipeline",
    "plan_stages",
    "PackedTensor",
    "PackedWeights",
    "SignSpec",
    "choose_matmul_kernel",
    "fused_matmul_sign",
    "fused_conv2d_sign",
    "pack_linear_weights",
    "pack_conv_weights",
    "packed_maxpool2d",
    "packed_flatten",
    "build_network",
    "list_networks",
    "LayerSpec",
    "NetworkWorkload",
    "extract_workload",
    "get_workload",
    "xnor",
    "popcount",
    "xnor_popcount",
    "binary_dot",
    "binary_matmul",
    "binary_matmul_packed",
    "binary_matmul_reference",
    "binary_conv2d",
    "binary_conv2d_reference",
    "im2col",
    "pack_bipolar",
]
