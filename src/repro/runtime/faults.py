"""Seeded, schedule-driven fault injection for the queue-storage layer.

PR 5 gave :class:`~repro.runtime.store.LocalObjectStore` ad-hoc test
hooks (``latency_s``, ``conflict_hook``, ``fault_hook``); this module
promotes them into a first-class, *reproducible* chaos schedule:

:class:`FaultPlan`
    A JSON-able description of what to break and how often — latency
    spikes, operation-targeted I/O errors, conditional-verb conflict
    storms, and a worker SIGKILL cadence for chaos drivers — all drawn
    from one seeded RNG, so a chaos failure replays exactly from the
    seed printed in the failure message.

``REPRO_RUNTIME_FAULTS``
    Environment toggle carrying a plan as JSON.  Because worker
    subprocesses resolve their stores through the same environment (see
    :func:`repro.runtime.store.resolve_store`), exporting one variable
    injects the *same* fault schedule into every member of a fleet —
    the supervisor's spawned workers included — without any of them
    being chaos-aware.

Plan schema (all keys optional; rates are probabilities per operation)::

    {
      "seed": 1234,
      "latency":   {"rate": 0.05, "min_s": 0.001, "max_s": 0.02,
                    "ops": ["get", "put"]},
      "errors":    {"rate": 0.02, "ops": null},
      "conflicts": {"rate": 0.05},
      "kill_interval_s": [0.5, 1.5]
    }

``ops: null`` (or omitted) targets every operation.  ``kill_interval_s``
is consumed by chaos drivers (the soak test, ``bench_chaos.py``) via
:meth:`FaultPlan.next_kill_delay_s`; the stores ignore it.

Injected errors raise :class:`FaultInjected`, an ``OSError`` subclass —
so :func:`repro.runtime.resilience.classify_outage` files them as
transient and every retry/backoff path treats a drill exactly like a
real storage hiccup.  Faults are raised *before* the underlying verb
takes effect (fail-fast transport semantics), which is what makes
retrying the primitive verbs side-effect-safe.
"""

from __future__ import annotations

import json
import os
import random
import threading
from typing import Dict, Iterable, Optional, Tuple

from repro.runtime.resilience import TRANSIENT

#: environment variable carrying a :class:`FaultPlan` as JSON, injected
#: into every store the process (and its worker subprocesses) resolves
FAULTS_ENV = "REPRO_RUNTIME_FAULTS"

#: operations a plan may target (superset of both stores' verbs)
KNOWN_OPS = (
    "list", "get", "head", "put", "put_if_absent", "delete",
    "delete_if_generation", "move",
)

#: conditional verbs a ``conflicts`` spec can force to fail
CONDITIONAL_OPS = ("put_if_absent", "delete_if_generation", "move")


class FaultInjected(OSError):
    """A fault-injection layer dropped a storage call (transient).

    Carries the plan seed so a failure seen once reproduces exactly:
    re-run with ``REPRO_RUNTIME_FAULTS='{"seed": <seed>, ...}'`` (the
    message spells it out).  Subclassing ``OSError`` files it as
    :data:`~repro.runtime.resilience.TRANSIENT` everywhere.
    """

    outage_class = TRANSIENT

    def __init__(self, op: str, key: str, seed: int) -> None:
        super().__init__(
            f"injected {op} fault at {key!r} "
            f"(FaultPlan seed {seed}; rerun with {FAULTS_ENV}="
            f"'{{\"seed\": {seed}, ...}}' to replay this schedule)"
        )
        self.op = op
        self.key = key
        self.seed = seed


class _OpSpec:
    """One fault family: a rate plus an optional operation filter."""

    def __init__(self, rate: float = 0.0,
                 ops: Optional[Iterable[str]] = None) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.ops: Optional[Tuple[str, ...]] = (
            None if ops is None else tuple(ops)
        )
        if self.ops is not None:
            unknown = set(self.ops) - set(KNOWN_OPS)
            if unknown:
                raise ValueError(
                    f"unknown fault ops {sorted(unknown)}; "
                    f"choose from {KNOWN_OPS}"
                )

    def applies(self, op: str) -> bool:
        return self.rate > 0 and (self.ops is None or op in self.ops)

    def to_dict(self) -> Dict[str, object]:
        return {"rate": self.rate,
                "ops": None if self.ops is None else list(self.ops)}


class _LatencySpec(_OpSpec):
    """Latency-spike family: adds a uniform ``[min_s, max_s]`` sleep."""

    def __init__(self, rate: float = 0.0, min_s: float = 0.0,
                 max_s: float = 0.0,
                 ops: Optional[Iterable[str]] = None) -> None:
        super().__init__(rate, ops)
        self.min_s = float(min_s)
        self.max_s = float(max_s)
        if self.min_s < 0 or self.max_s < self.min_s:
            raise ValueError("need 0 <= min_s <= max_s for latency spikes")

    def to_dict(self) -> Dict[str, object]:
        spec = super().to_dict()
        spec.update({"min_s": self.min_s, "max_s": self.max_s})
        return spec


class FaultPlan:
    """A seeded chaos schedule the storage layer consults per operation.

    Thread-safe: a single plan instance is shared by every store a
    process resolves (plus the worker threads inside it), and all draws
    come from one seeded stream guarded by a lock — the schedule is a
    deterministic function of the seed and the global operation order.

    Parameters mirror the JSON schema in the module docstring:
    ``latency`` / ``errors`` / ``conflicts`` are dicts (or ``None``),
    ``kill_interval_s`` an optional ``(lo, hi)`` pair for chaos drivers.
    """

    def __init__(self, *, seed: int = 0,
                 latency: Optional[Dict[str, object]] = None,
                 errors: Optional[Dict[str, object]] = None,
                 conflicts: Optional[Dict[str, object]] = None,
                 kill_interval_s: Optional[Tuple[float, float]] = None
                 ) -> None:
        self.seed = int(seed)
        self.latency = _LatencySpec(**(latency or {}))
        self.errors = _OpSpec(**(errors or {}))
        self.conflicts = _OpSpec(**(conflicts or {}))
        if kill_interval_s is not None:
            lo, hi = (float(kill_interval_s[0]), float(kill_interval_s[1]))
            if lo <= 0 or hi < lo:
                raise ValueError(
                    f"kill_interval_s needs 0 < lo <= hi, got {lo}..{hi}"
                )
            kill_interval_s = (lo, hi)
        self.kill_interval_s = kill_interval_s
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # -- store-facing draws ----------------------------------------------
    def latency_s(self, op: str, key: str) -> float:
        """Extra seconds to sleep before ``op`` (0.0 = no spike)."""
        if not self.latency.applies(op):
            return 0.0
        with self._lock:
            if self._rng.random() >= self.latency.rate:
                return 0.0
            return self._rng.uniform(self.latency.min_s, self.latency.max_s)

    def check_fault(self, op: str, key: str) -> None:
        """Raise :class:`FaultInjected` when the schedule drops this call."""
        if not self.errors.applies(op):
            return
        with self._lock:
            hit = self._rng.random() < self.errors.rate
        if hit:
            raise FaultInjected(op, key, self.seed)

    def forced_conflict(self, op: str, key: str) -> bool:
        """Whether a conditional verb must fail its precondition now."""
        if op not in CONDITIONAL_OPS or not self.conflicts.applies(op):
            return False
        with self._lock:
            return self._rng.random() < self.conflicts.rate

    # -- chaos-driver draws ----------------------------------------------
    def next_kill_delay_s(self) -> Optional[float]:
        """Seconds until the next worker SIGKILL (None = no kill cadence)."""
        if self.kill_interval_s is None:
            return None
        lo, hi = self.kill_interval_s
        with self._lock:
            return self._rng.uniform(lo, hi)

    # -- (de)serialisation ------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "latency": self.latency.to_dict(),
            "errors": self.errors.to_dict(),
            "conflicts": self.conflicts.to_dict(),
            "kill_interval_s": (None if self.kill_interval_s is None
                                else list(self.kill_interval_s)),
        }

    def to_json(self) -> str:
        """Compact JSON form (what :data:`FAULTS_ENV` carries)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "FaultPlan":
        """Build a plan from the JSON schema (unknown keys rejected)."""
        if not isinstance(spec, dict):
            raise ValueError(f"a FaultPlan must be a JSON object, got {spec!r}")
        known = {"seed", "latency", "errors", "conflicts", "kill_interval_s"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan keys {sorted(unknown)}; "
                f"choose from {sorted(known)}"
            )
        kill = spec.get("kill_interval_s")
        return cls(
            seed=spec.get("seed", 0),
            latency=spec.get("latency"),
            errors=spec.get("errors"),
            conflicts=spec.get("conflicts"),
            kill_interval_s=None if kill is None else tuple(kill),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the :data:`FAULTS_ENV` JSON payload into a plan."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{FAULTS_ENV} does not hold valid JSON: {error}"
            ) from error
        return cls.from_dict(spec)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan configured via :data:`FAULTS_ENV` (None when unset)."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.from_json(text)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultPlan(seed={self.seed}, "
                f"latency_rate={self.latency.rate}, "
                f"error_rate={self.errors.rate}, "
                f"conflict_rate={self.conflicts.rate}, "
                f"kill_interval_s={self.kill_interval_s})")
