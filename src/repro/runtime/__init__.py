"""Unified runtime executor layer: one pluggable parallel substrate.

Everything in the repository that fans independent work out — design-space
sweep points (:mod:`repro.eval.sweep`), packed inference chunks
(:class:`repro.bnn.model.InferenceEngine`), repeated benchmark
measurements (``benchmarks/``) — executes through this package:

* :mod:`repro.runtime.tasks` — the ordered work-list abstraction.
* :mod:`repro.runtime.executors` — pluggable backends (serial / thread /
  process) plus backend resolution (``backend=`` kwargs, ``workers=``
  backward compatibility, the ``REPRO_RUNTIME_BACKEND`` env toggle and
  per-backend ``options=``).
* :mod:`repro.runtime.queue` — the file/dir work-queue protocol, the seam
  for multi-host execution.  Claims are heartbeat-renewed leases, so a
  crashed worker's tasks are recovered automatically; ``python -m
  repro.runtime.queue <root> serve|status|compact|reap`` is the fleet
  CLI (see ``docs/multihost-runbook.md``).
* :mod:`repro.runtime.janitor` — fleet maintenance over that protocol:
  the orphan reaper, poisoned-task quarantine, the result compactor and
  machine-readable queue status.
* :mod:`repro.runtime.measure` — the repeated-measurement harness the
  benchmarks drive their timing loops through.

Every backend returns results in submission order and every task argument
is self-contained and seeded, so all call sites are bit-identical across
backends — the contract the runtime test suite enforces (including under
simulated worker crashes; see ``tests/runtime/test_queue_recovery.py``).
"""

from repro.runtime.executors import (
    BACKEND_ENV,
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    backend_from_env,
    make_executor,
    resolve_executor,
)
from repro.runtime.measure import Measurement, measure, measure_pair
from repro.runtime.queue import QueueExecutor
from repro.runtime.tasks import Task, WorkList, gather, run_serially

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "Executor",
    "Measurement",
    "ProcessExecutor",
    "QueueExecutor",
    "SerialExecutor",
    "Task",
    "ThreadExecutor",
    "WorkList",
    "backend_from_env",
    "gather",
    "make_executor",
    "measure",
    "measure_pair",
    "resolve_executor",
    "run_serially",
]
