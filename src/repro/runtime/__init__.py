"""Unified runtime executor layer: one pluggable parallel substrate.

Everything in the repository that fans independent work out — design-space
sweep points (:mod:`repro.eval.sweep`), packed inference chunks
(:class:`repro.bnn.model.InferenceEngine`), repeated benchmark
measurements (``benchmarks/``) — executes through this package:

* :mod:`repro.runtime.tasks` — the ordered work-list abstraction.
* :mod:`repro.runtime.executors` — pluggable backends (serial / thread /
  process) plus backend resolution (``backend=`` kwargs, ``workers=``
  backward compatibility, the ``REPRO_RUNTIME_BACKEND`` env toggle and
  per-backend ``options=``).
* :mod:`repro.runtime.queue` — the work-queue protocol, the seam for
  multi-host execution.  Claims are heartbeat-renewed leases whose
  records carry absolute deadlines, so a crashed worker's tasks are
  recovered automatically; ``python -m repro.runtime.queue <root>
  serve|status|autoscale|compact|reap`` is the fleet CLI (see
  ``docs/multihost-runbook.md``).
* :mod:`repro.runtime.store` — pluggable queue storage behind the
  :class:`~repro.runtime.store.QueueStore` interface: ``DirStore`` (the
  POSIX directory layout) and ``ObjectStore`` (S3-style conditional
  puts over :class:`~repro.runtime.store.LocalObjectStore`), selected
  per call (``store=``), per executor, or fleet-wide via
  ``REPRO_RUNTIME_STORE``.
* :mod:`repro.runtime.janitor` — fleet maintenance over that protocol:
  the orphan reaper, poisoned-task quarantine, the result compactor,
  machine-readable queue status and the autoscaling advisory
  (:func:`~repro.runtime.janitor.autoscale_advisory`).
* :mod:`repro.runtime.supervisor` — the daemon that *acts* on those
  advisories (``python -m repro.runtime.queue <root> supervise``):
  spawns/retires real worker subprocesses with cooldown + hysteresis,
  restarts crashes under jittered backoff, benches crash-loopers, and
  emits a JSON event stream.
* :mod:`repro.runtime.resilience` — the centralised retry / backoff /
  outage-classification policy (transient vs deterministic failures,
  decorrelated jitter, crash-loop budgets) adopted by the store,
  queue, supervisor and serving layers.
* :mod:`repro.runtime.faults` — seeded, schedule-driven fault
  injection (:class:`~repro.runtime.faults.FaultPlan`, the
  ``REPRO_RUNTIME_FAULTS`` fleet-wide toggle) behind the chaos soak
  and ``benchmarks/bench_chaos.py``.
* :mod:`repro.runtime.shm` — the shared-memory chunk transport for
  same-host pools: :class:`~repro.runtime.shm.SharedArrayPool` segments
  referenced by picklable ``(name, dtype, shape, offset)`` descriptors
  replace per-task ndarray pickling (``REPRO_RUNTIME_SHM`` gates it;
  remote queue fleets keep the pickle path).
* :mod:`repro.runtime.measure` — the repeated-measurement harness the
  benchmarks drive their timing loops through.

Every backend returns results in submission order and every task argument
is self-contained and seeded, so all call sites are bit-identical across
backends — the contract the runtime test suite enforces (including under
simulated worker crashes; see ``tests/runtime/test_queue_recovery.py``).
"""

from repro.runtime.executors import (
    BACKEND_ENV,
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    backend_from_env,
    make_executor,
    resolve_executor,
)
from repro.runtime.measure import (
    Measurement,
    measure,
    measure_pair,
    percentile,
    percentiles,
)
from repro.runtime.faults import FAULTS_ENV, FaultInjected, FaultPlan
from repro.runtime.queue import PART_PREFIX, QueueExecutor, partition_namespace
from repro.runtime.shm import (
    SHM_ENV,
    ArrayDescriptor,
    SharedArrayPool,
    attach_view,
    shm_mode,
    use_shm_transport,
)
from repro.runtime.resilience import (
    BackoffPolicy,
    DETERMINISTIC,
    RestartBudget,
    TRANSIENT,
    classify_outage,
    decorrelated_jitter,
    retry_backoff,
    retry_call,
)
from repro.runtime.store import (
    STORE_ENV,
    STORES,
    DirStore,
    FaultInjectingStore,
    LocalObjectStore,
    ObjectStore,
    QueueStore,
    make_store,
    resolve_store,
    store_from_env,
)
from repro.runtime.supervisor import Supervisor
from repro.runtime.tasks import Task, WorkList, gather, run_serially

__all__ = [
    "ArrayDescriptor",
    "BACKEND_ENV",
    "BACKENDS",
    "BackoffPolicy",
    "DETERMINISTIC",
    "DirStore",
    "Executor",
    "FAULTS_ENV",
    "FaultInjected",
    "FaultInjectingStore",
    "FaultPlan",
    "LocalObjectStore",
    "Measurement",
    "ObjectStore",
    "PART_PREFIX",
    "ProcessExecutor",
    "QueueExecutor",
    "QueueStore",
    "RestartBudget",
    "SHM_ENV",
    "STORE_ENV",
    "STORES",
    "SerialExecutor",
    "SharedArrayPool",
    "Supervisor",
    "TRANSIENT",
    "Task",
    "ThreadExecutor",
    "WorkList",
    "attach_view",
    "backend_from_env",
    "classify_outage",
    "decorrelated_jitter",
    "gather",
    "make_executor",
    "make_store",
    "measure",
    "measure_pair",
    "partition_namespace",
    "percentile",
    "percentiles",
    "resolve_executor",
    "resolve_store",
    "retry_backoff",
    "retry_call",
    "run_serially",
    "shm_mode",
    "store_from_env",
    "use_shm_transport",
]
