"""Work-list abstraction shared by every executor backend.

The runtime layer deliberately models the *simplest* unit of parallel work
the repository needs: an ordered list of independent tasks, each a pure
function of one self-contained argument.  Every parallel seam in the repo —
sweep grid points, packed inference chunks, repeated benchmark measurements
— already has this shape: the argument carries its own derived seed (see
:func:`repro.utils.rng.derive_seed`), so results are deterministic no matter
which backend runs the tasks or in what order they finish.

A :class:`WorkList` is what executors execute.  Tasks keep their submission
``index`` so out-of-order completion (threads, processes, remote queue
workers) can always be reassembled into submission order — the property the
bit-identical-across-backends guarantees of :mod:`repro.eval.sweep` and
:class:`repro.bnn.model.InferenceEngine` rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(arg)``, tagged with its submission index.

    ``fn`` must be a picklable callable (a module-level function or a
    picklable callable object) for the process and queue backends; ``arg``
    must be self-contained — anything stochastic inside the task derives
    from seeds carried *in* the argument, never from ambient state.

    ``fn`` must also be a *pure* function of ``arg``: the queue backend's
    lease recovery may execute a task more than once (a slow or crashed
    worker's claim expires and is re-queued), and correctness then rests
    on every execution publishing a byte-identical result.
    """

    index: int
    fn: Callable[[object], object]
    arg: object

    def run(self) -> object:
        """Execute the task and return its result."""
        return self.fn(self.arg)


class WorkList:
    """An ordered, immutable list of independent tasks."""

    def __init__(self, tasks: Iterable[Task]) -> None:
        self._tasks: Tuple[Task, ...] = tuple(tasks)
        for position, task in enumerate(self._tasks):
            if task.index != position:
                raise ValueError(
                    f"task at position {position} carries index {task.index}; "
                    "work lists must be indexed contiguously from 0"
                )

    @classmethod
    def from_items(cls, fn: Callable[[object], object],
                   items: Iterable[object]) -> "WorkList":
        """Build a work list applying ``fn`` to every item, in order."""
        return cls(Task(index=i, fn=fn, arg=item)
                   for i, item in enumerate(items))

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """The tasks, in submission order."""
        return self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __bool__(self) -> bool:
        return bool(self._tasks)


def gather(indexed_results: Iterable[Tuple[int, object]],
           expected: int) -> List[object]:
    """Reassemble ``(index, result)`` pairs into submission order.

    Raises when an index is missing or duplicated — a protocol violation by
    a backend (e.g. a queue worker that crashed mid-task) must surface as an
    error, never as silently reordered or dropped results.
    """
    slots: List[object] = [_MISSING] * expected
    for index, result in indexed_results:
        if not 0 <= index < expected:
            raise ValueError(f"result index {index} outside 0..{expected - 1}")
        if slots[index] is not _MISSING:
            raise ValueError(f"duplicate result for task {index}")
        slots[index] = result
    missing = [i for i, slot in enumerate(slots) if slot is _MISSING]
    if missing:
        raise ValueError(f"missing results for tasks {missing}")
    return slots


class _Missing:
    """Sentinel distinguishing 'no result yet' from a ``None`` result."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


def run_serially(worklist: WorkList) -> List[object]:
    """Reference execution: run every task in submission order, in-process.

    This is both the :class:`~repro.runtime.executors.SerialExecutor`
    implementation and the semantic oracle every other backend must match
    bit-for-bit.
    """
    return [task.run() for task in worklist]


#: sequence type accepted wherever a list of task arguments is expected
Items = Sequence[object]
