"""Repeated-measurement harness driving benchmarks through the runtime.

The benchmark files used to hand-roll ``for _ in range(reps)`` timing
loops.  This module routes those repeated measurements through the same
work-list/executor layer as the sweeps and the inference engine: each
repetition is one task that times its own call with
:func:`time.perf_counter`, so the per-call numbers stay valid no matter
which backend runs the repetitions.  Timing repetitions default to the
serial backend — wall-clock measurements only make sense without
co-scheduled siblings — but *independent* measurement tasks (different
configurations of one bench) can fan out across any executor.

:func:`percentile` / :func:`percentiles` are the shared order-statistic
helpers: benchmarks summarise repetition samples with them and the
serving layer (:mod:`repro.serving.metrics`) computes its streaming
p50/p95/p99 latency snapshot over the same rule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.executors import Executor, SerialExecutor


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation).

    ``q`` is in ``[0, 100]``.  Uses the same linear-interpolation rule as
    ``numpy.percentile``'s default, but stays pure python so the serving
    metrics path never copies its latency window into an array per
    snapshot.  Raises :class:`ValueError` on an empty sample set — the
    caller decides what an absent percentile means.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def percentiles(samples: Sequence[float],
                qs: Sequence[float] = (50.0, 95.0, 99.0)
                ) -> Dict[float, float]:
    """Several percentiles of one sample set, sorted once.

    Returns ``{q: value}`` for every ``q`` in ``qs`` — the helper behind
    the serving layer's p50/p95/p99 snapshot.
    """
    if not samples:
        raise ValueError("percentiles of an empty sample set")
    ordered = sorted(samples)
    return {q: percentile(ordered, q) for q in qs}


@dataclass(frozen=True)
class Measurement:
    """Wall-clock samples of one repeated measurement."""

    label: str
    seconds: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.seconds:
            raise ValueError("a measurement needs at least one sample")

    @property
    def reps(self) -> int:
        """Number of timed repetitions."""
        return len(self.seconds)

    @property
    def best(self) -> float:
        """Fastest repetition (the least-noise estimator)."""
        return min(self.seconds)

    @property
    def median(self) -> float:
        """Median repetition (the robust central estimator)."""
        ordered = sorted(self.seconds)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def mean(self) -> float:
        """Arithmetic mean of the repetitions."""
        return sum(self.seconds) / len(self.seconds)

    def throughput(self, items: int, *, estimator: str = "median") -> float:
        """Items/second under the chosen estimator (``median`` or ``best``)."""
        if estimator not in ("median", "best", "mean"):
            raise ValueError("estimator must be 'median', 'best' or 'mean'")
        return items / getattr(self, estimator)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the repetition samples."""
        return percentile(self.seconds, q)


def _timed_call(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class _TimedRep:
    """Picklable per-repetition task: times one call of ``fn``.

    A callable object rather than a closure so ``measure(executor=...)``
    honours every backend — the process/queue backends ship tasks by
    pickle (``fn`` itself must then be picklable too, the backends'
    general contract).
    """

    def __init__(self, fn: Callable[[], object]) -> None:
        self.fn = fn

    def __call__(self, _rep: object) -> float:
        return _timed_call(self.fn)


def measure(fn: Callable[[], object], *, reps: int, label: str = "",
            warmup: int = 0,
            executor: Optional[Executor] = None) -> Measurement:
    """Time ``fn()`` over ``reps`` repetitions through the runtime layer.

    ``warmup`` untimed calls run first (pack caches, BLAS thread pools,
    page faults).  Each repetition times itself inside its task, so the
    samples are per-call durations under any backend; the default —
    and recommended — backend for timing is serial.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    runner = executor if executor is not None else SerialExecutor()
    samples: List[float] = runner.map(_TimedRep(fn), range(reps))
    return Measurement(label=label, seconds=tuple(samples))


def measure_pair(fast: Callable[[], object], slow: Callable[[], object], *,
                 reps: int, label: str = "", warmup: int = 0
                 ) -> Tuple[Measurement, Measurement, float]:
    """Interleaved A/B measurement returning ``(fast, slow, speedup)``.

    Interleaving the two callables inside each repetition (rather than
    timing two separate loops) keeps slow thermal/background drift from
    biasing one side — the layout the inference benchmarks use for their
    dense-vs-packed speedups.  ``speedup`` is ``slow.median / fast.median``.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    for _ in range(warmup):
        slow()
        fast()
    slow_samples: List[float] = []
    fast_samples: List[float] = []
    for _ in range(reps):
        slow_samples.append(_timed_call(slow))
        fast_samples.append(_timed_call(fast))
    fast_m = Measurement(label=f"{label}/fast" if label else "fast",
                         seconds=tuple(fast_samples))
    slow_m = Measurement(label=f"{label}/slow" if label else "slow",
                         seconds=tuple(slow_samples))
    return fast_m, slow_m, slow_m.median / fast_m.median
