"""Fleet maintenance for the work queue: reap, quarantine, compact, status.

The queue protocol (:mod:`repro.runtime.queue`) makes claims time-bounded
leases; this module is the machinery that acts on them:

* :func:`reap_layout` / :func:`reap` — the **reaper**: re-queues orphaned
  claims whose lease expired (a worker died, or was SIGKILLed mid-task)
  and quarantines tasks that keep killing workers into ``failed/`` after
  ``max_retries`` re-queues, publishing an ``ok=False`` result so
  collectors fail fast instead of timing out.
* :func:`compact_layout` / :func:`compact` — the **result compactor**:
  merges loose per-task result pickles into chunked bundles so collecting
  a 100k-task sweep opens hundreds of files instead of 100k.
* :func:`layout_status` / :func:`status` — machine-readable queue counts
  (queued / claimed / done / failed), what ``python -m repro.runtime.queue
  <root> status`` prints.

Everything here is safe to run concurrently from any number of hosts:
ownership of every state transition is decided by a single atomic
``os.rename`` (re-queue, quarantine), and compaction tolerates racing
compactors by writing uniquely-named bundles whose duplicate entries
collapse at read time (results are byte-identical by the determinism
contract, so last-write-wins is a no-op).

The reaper is invoked automatically by ``collect_results`` (every poll)
and by ``serve --watch`` workers (between polls), so any live fleet
member recovers a dead one's work without operator action; the CLI
``reap`` verb exists for manual recovery drills and cron-style janitors.
"""

from __future__ import annotations

import os
import pickle
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.queue import (
    _ATTEMPTS_DIR,
    _BUNDLE_PREFIX,
    _CLAIMS_DIR,
    _FAILED_DIR,
    _RESULTS_DIR,
    _TASKS_DIR,
    _atomic_write,
    _atomic_write_exclusive,
    _layout_roots,
    _lease_path,
    _read_result_entries,
    _task_filename,
    _task_index,
    DEFAULT_COMPACT_THRESHOLD,
    default_lease_s,
    default_max_retries,
    published_indices,
    read_attempts,
    read_lease,
    record_attempt,
)


@dataclass(frozen=True)
class ReapReport:
    """What one reaper pass did, per task index.

    ``requeued``
        Expired claims moved back to ``tasks/`` for another attempt.
    ``quarantined``
        Poisoned tasks (attempts exhausted) moved to ``failed/`` with an
        ``ok=False`` result published.
    ``released``
        Expired claims whose result was already published — the worker
        died *after* finishing; the claim is simply dropped, the work is
        **not** re-executed.
    """

    requeued: Tuple[int, ...] = ()
    quarantined: Tuple[int, ...] = ()
    released: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.requeued or self.quarantined or self.released)

    def to_dict(self) -> Dict[str, List[int]]:
        """JSON-ready dictionary of this report."""
        return {
            "requeued": list(self.requeued),
            "quarantined": list(self.quarantined),
            "released": list(self.released),
        }

    @staticmethod
    def merge(reports: List["ReapReport"]) -> "ReapReport":
        """Union of several layout reports (indices concatenated sorted)."""
        return ReapReport(
            requeued=tuple(sorted(i for r in reports for i in r.requeued)),
            quarantined=tuple(
                sorted(i for r in reports for i in r.quarantined)
            ),
            released=tuple(sorted(i for r in reports for i in r.released)),
        )


def _lease_deadline(claimed_path: str,
                    lease: Optional[Dict[str, object]]) -> Optional[float]:
    """Wall-clock lease deadline of a claim (``None`` if it vanished)."""
    try:
        mtime = os.path.getmtime(claimed_path)
    except OSError:
        return None
    lease_s = default_lease_s()
    if lease is not None:
        try:
            lease_s = float(lease.get("lease_s") or lease_s)
        except (TypeError, ValueError):
            pass
    return mtime + lease_s


def _quarantine(root: str, claimed_path: str, index: int, attempts: int,
                owner: object) -> Optional[bool]:
    """Move a poisoned task to ``failed/`` and publish a failure result.

    Returns True on quarantine, False when another janitor won the
    rename, and ``None`` when the task turned out to be *completed* — a
    stalled final-attempt worker can publish its (successful) result
    between the reaper's done-snapshot and this call, and a success must
    never be clobbered by a failure notice: the fresh re-check plus the
    link-based exclusive write guarantee it survives.
    """
    os.makedirs(os.path.join(root, _FAILED_DIR), exist_ok=True)
    failed_path = os.path.join(root, _FAILED_DIR, _task_filename(index))
    try:
        os.rename(claimed_path, failed_path)
    except OSError:
        return False  # another janitor (or the worker itself) won
    _remove_quietly(_lease_path(claimed_path))
    if index in published_indices(root):
        # completed after all — drop the quarantine, the work is done
        _remove_quietly(failed_path)
        return None
    published = _atomic_write_exclusive(root, _RESULTS_DIR,
                                        _task_filename(index), (
        index, False,
        f"task {index} quarantined after {attempts} expired lease(s) "
        f"(last owner: {owner!r}); its task file is preserved at "
        f"{failed_path!r} — fix the poison pill and re-enqueue it, or "
        f"raise max_retries if the workers were killed externally"
    ))
    if not published:
        # a loose success result landed in the microsecond window after
        # the re-check; the task is done, not poisoned
        _remove_quietly(failed_path)
        return None
    return True


def _requeue(root: str, claimed_path: str, index: int,
             attempts: int) -> bool:
    """Move an expired claim back to ``tasks/`` for another attempt."""
    # drop the dead owner's sidecar BEFORE the rename makes the task
    # claimable again: afterwards a fast worker may already have
    # re-claimed it and written a fresh sidecar we must not delete
    _remove_quietly(_lease_path(claimed_path))
    target = os.path.join(root, _TASKS_DIR, os.path.basename(claimed_path))
    try:
        os.rename(claimed_path, target)
    except OSError:
        return False  # lost the race to another janitor or the worker
    record_attempt(root, index, attempts)
    return True


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def reap_layout(root: str, *, max_retries: Optional[int] = None,
                now: Optional[float] = None) -> ReapReport:
    """One reaper pass over a single queue layout.

    Scans ``claims/`` for leases whose deadline (claim mtime + lease
    length, renewed by worker heartbeats) has passed.  Each expired claim
    is resolved by exactly one janitor via an atomic rename:

    * result already published -> the claim is released (the worker died
      after finishing; completed work is never re-executed);
    * attempts left -> re-queued into ``tasks/`` with its attempt count
      bumped (``attempts/``);
    * attempts exhausted -> quarantined into ``failed/`` with an
      ``ok=False`` result, failing collectors fast instead of letting a
      poison pill crash-loop the fleet forever.

    ``now`` injects a wall-clock for deterministic expiry tests.
    """
    if max_retries is None:
        max_retries = default_max_retries()
    claims_dir = os.path.join(root, _CLAIMS_DIR)
    try:
        names = sorted(os.listdir(claims_dir))
    except OSError:
        return ReapReport()
    current = time.time() if now is None else now
    requeued: List[int] = []
    quarantined: List[int] = []
    released: List[int] = []
    done_indices: Optional[set] = None
    for name in names:
        if not name.endswith(".pkl"):
            continue  # lease sidecars ride along with their claim
        claimed_path = os.path.join(claims_dir, name)
        lease = read_lease(claimed_path)
        deadline = _lease_deadline(claimed_path, lease)
        if deadline is None or current < deadline:
            continue  # finished meanwhile, or the lease is still live
        index = _task_index(name)
        # a worker that died between publishing the result and releasing
        # the claim left completed work behind: drop the claim, never
        # re-execute (the "no double-execution of completed work" rule).
        # The published result may already live inside a compacted bundle,
        # so the check covers bundles too — computed lazily, only once an
        # expired claim actually exists (the rare path)
        if done_indices is None:
            done_indices = published_indices(root)
        if index in done_indices:
            _remove_quietly(claimed_path)
            _remove_quietly(_lease_path(claimed_path))
            released.append(index)
            continue
        attempts = read_attempts(root, index) + 1
        owner = (lease or {}).get("owner")
        if attempts > max_retries:
            outcome = _quarantine(root, claimed_path, index, attempts - 1,
                                  owner)
            if outcome:
                quarantined.append(index)
            elif outcome is None:  # completed in the snapshot gap
                released.append(index)
        elif _requeue(root, claimed_path, index, attempts):
            requeued.append(index)
    return ReapReport(requeued=tuple(requeued),
                      quarantined=tuple(quarantined),
                      released=tuple(released))


def reap(root: str, *, max_retries: Optional[int] = None,
         now: Optional[float] = None) -> ReapReport:
    """Reap every layout under ``root`` (the root itself plus ``run-*``)."""
    return ReapReport.merge([
        reap_layout(layout, max_retries=max_retries, now=now)
        for layout in _layout_roots(root)
    ])


def _loose_result_files(root: str) -> List[str]:
    """Sorted loose (un-bundled) result filenames of one layout."""
    results_dir = os.path.join(root, _RESULTS_DIR)
    try:
        names = os.listdir(results_dir)
    except OSError:
        return []
    return sorted(
        name for name in names
        if name.endswith(".pkl") and not name.startswith(_BUNDLE_PREFIX)
    )


def compact_layout(root: str, *, chunk_size: int = DEFAULT_COMPACT_THRESHOLD,
                   partial: bool = False) -> int:
    """Merge loose result files of one layout into chunked bundles.

    Groups of ``chunk_size`` loose results become one
    ``results/bundle-<first>-<hex>.pkl`` holding their ``(index, ok,
    payload)`` entries; the loose files actually read are deleted after
    the bundle is atomically published.  With ``partial`` the final
    under-sized group is bundled too (end-of-run compaction); without it
    only full chunks are bundled, so nothing happens until at least
    ``chunk_size`` loose files exist — which makes this function double
    as its own trigger threshold.

    Concurrent compactors (or a compactor racing a collector) are safe:
    bundle names are unique, a loose file deleted mid-read is skipped,
    and overlapping bundles merely carry duplicate entries that collapse
    by index at read time.  Returns the number of bundles written.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    loose = _loose_result_files(root)
    if not partial and len(loose) < chunk_size:
        return 0
    results_dir = os.path.join(root, _RESULTS_DIR)
    bundles_written = 0
    for start in range(0, len(loose), chunk_size):
        group = loose[start:start + chunk_size]
        if not partial and len(group) < chunk_size:
            break
        entries: List[Tuple[int, bool, object]] = []
        consumed: List[str] = []
        for name in group:
            try:
                with open(os.path.join(results_dir, name), "rb") as handle:
                    entries.append(pickle.load(handle))
            except FileNotFoundError:
                continue  # a racing compactor bundled it already
            consumed.append(name)
        if not entries:
            continue
        first = min(index for index, _, _ in entries)
        bundle_name = f"{_BUNDLE_PREFIX}{first:07d}-{uuid.uuid4().hex[:8]}.pkl"
        _atomic_write(root, _RESULTS_DIR, bundle_name, entries)
        for name in consumed:
            _remove_quietly(os.path.join(results_dir, name))
        bundles_written += 1
    return bundles_written


def compact(root: str, *, chunk_size: int = DEFAULT_COMPACT_THRESHOLD,
            partial: bool = False) -> int:
    """Compact every layout under ``root``; returns bundles written."""
    return sum(
        compact_layout(layout, chunk_size=chunk_size, partial=partial)
        for layout in _layout_roots(root)
    )


@dataclass(frozen=True)
class LayoutStatus:
    """Machine-readable state of one queue layout."""

    queued: int
    claimed: int
    done: int
    failed: int
    loose_results: int
    bundles: int
    owners: Tuple[str, ...] = ()
    attempts: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary of this status."""
        return {
            "queued": self.queued,
            "claimed": self.claimed,
            "done": self.done,
            "failed": self.failed,
            "loose_results": self.loose_results,
            "bundles": self.bundles,
            "owners": sorted(self.owners),
            "attempts": {str(k): v for k, v in sorted(self.attempts.items())},
        }


def _count_dir(root: str, subdir: str) -> List[str]:
    try:
        return [name for name in os.listdir(os.path.join(root, subdir))
                if name.endswith(".pkl")]
    except OSError:
        return []


def layout_status(root: str) -> LayoutStatus:
    """Queue counts of one layout.

    ``done`` counts distinct *successful* result indices, ``failed`` the
    distinct failed ones (worker tracebacks and quarantined poison pills
    alike) — so ``done == expected`` really means the run succeeded, and
    ``done + failed`` never double-counts a task.
    """
    claims = _count_dir(root, _CLAIMS_DIR)
    owners = []
    for name in claims:
        lease = read_lease(os.path.join(root, _CLAIMS_DIR, name))
        if lease and lease.get("owner"):
            owners.append(str(lease["owner"]))
    all_entries = _read_result_entries(root)
    entries = {index: payload for index, payload in all_entries.items()
               if payload[0]}
    failed_indices = {index for index, payload in all_entries.items()
                      if not payload[0]}
    failed_indices.update(
        _task_index(name) for name in _count_dir(root, _FAILED_DIR)
    )
    loose = _loose_result_files(root)
    bundles = [name for name in _count_dir(root, _RESULTS_DIR)
               if name.startswith(_BUNDLE_PREFIX)]
    attempts: Dict[int, int] = {}
    for name in _count_dir(root, _ATTEMPTS_DIR):
        index = _task_index(name)
        count = read_attempts(root, index)
        if count:
            attempts[index] = count
    return LayoutStatus(
        queued=len(_count_dir(root, _TASKS_DIR)),
        claimed=len(claims),
        done=len(entries),
        failed=len(failed_indices),
        loose_results=len(loose),
        bundles=len(bundles),
        owners=tuple(owners),
        attempts=attempts,
    )


def status(root: str) -> Dict[str, object]:
    """Aggregate queue state under ``root``: totals plus per-layout detail.

    This is what ``python -m repro.runtime.queue <root> status`` prints;
    the top-level ``queued`` / ``claimed`` / ``done`` / ``failed`` keys
    are the fleet-wide counts a monitoring script wants, ``layouts`` maps
    each layout (``.`` is the root itself) to its full breakdown.
    """
    layouts = _layout_roots(root)
    per_layout = {
        os.path.relpath(layout, root): layout_status(layout)
        for layout in layouts
    }
    totals = {"queued": 0, "claimed": 0, "done": 0, "failed": 0}
    for layout in per_layout.values():
        totals["queued"] += layout.queued
        totals["claimed"] += layout.claimed
        totals["done"] += layout.done
        totals["failed"] += layout.failed
    return {
        **totals,
        "layouts": {name: s.to_dict() for name, s in per_layout.items()},
    }
