"""Fleet maintenance for the work queue: reap, quarantine, compact, status.

The queue protocol (:mod:`repro.runtime.queue`) makes claims time-bounded
leases; this module is the machinery that acts on them:

* :func:`reap_layout` / :func:`reap` — the **reaper**: re-queues orphaned
  claims whose lease expired (a worker died, or was SIGKILLed mid-task)
  and quarantines tasks that keep killing workers into ``failed/`` after
  ``max_retries`` re-queues, publishing an ``ok=False`` result so
  collectors fail fast instead of timing out.
* :func:`compact_layout` / :func:`compact` — the **result compactor**:
  merges loose per-task result pickles into chunked bundles so collecting
  a 100k-task sweep opens hundreds of objects instead of 100k.
* :func:`layout_status` / :func:`status` — machine-readable queue counts
  (queued / claimed / done / failed) plus the autoscaling signals
  (queue depth, oldest claim age, desired workers); what
  ``python -m repro.runtime.queue <root> status`` prints.
* :func:`autoscale_advisory` — a machine-readable scale-up / scale-down
  / hold recommendation for external worker scalers, emitted by
  ``python -m repro.runtime.queue <root> autoscale`` and fed to the
  ``autoscale_hook`` of a collecting
  :class:`~repro.runtime.queue.QueueExecutor`.

Everything here is storage-agnostic: every state transition goes through
the :class:`~repro.runtime.store.QueueStore` seam, whose backends make it
atomic their own way (``os.rename`` on the directory backend, a
conditional put + generation-guarded delete on object stores), so any
number of hosts can run janitors concurrently.  Compaction tolerates
racing compactors by writing uniquely-named bundles whose duplicate
entries collapse at read time (results are byte-identical by the
determinism contract, so last-write-wins is a no-op).

Lease expiry compares the **absolute deadline carried in the lease
record** against the janitor's wall clock — storage timestamps never
enter the comparison, so reaping stays correct when workers and the
shared substrate disagree on clocks (legacy sidecars without a deadline
fall back to the claim mtime on the directory backend).

The reaper is invoked automatically by ``collect_results`` (on its
maintenance cadence) and by ``serve --watch`` workers (between polls),
so any live fleet member recovers a dead one's work without operator
action; the CLI ``reap`` verb exists for manual recovery drills and
cron-style janitors.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.queue import (
    _ATTEMPTS_DIR,
    _BATCH_PREFIX,
    _BUNDLE_PREFIX,
    _CLAIMS_DIR,
    _FAILED_DIR,
    _RESULTS_DIR,
    _TASKS_DIR,
    _atomic_write_exclusive,
    _layout_roots,
    _lease_path,
    _read_result_entries,
    _task_filename,
    _task_index,
    DEFAULT_COMPACT_THRESHOLD,
    StoreLike,
    default_lease_s,
    default_max_retries,
    published_indices,
    read_attempts,
    record_attempt,
)
from repro.runtime.store import LEASE_SUFFIX, lease_length, resolve_store

#: autoscale-advisory defaults: how many backlog tasks one worker is
#: expected to absorb, and the advisory's desired-worker ceiling
DEFAULT_TASKS_PER_WORKER = 4
DEFAULT_MAX_WORKERS = 32


@dataclass(frozen=True)
class ReapReport:
    """What one reaper pass did, per task index.

    ``requeued``
        Expired claims moved back to ``tasks/`` for another attempt.
    ``quarantined``
        Poisoned tasks (attempts exhausted) moved to ``failed/`` with an
        ``ok=False`` result published.
    ``released``
        Expired claims whose result was already published — the worker
        died *after* finishing; the claim is simply dropped, the work is
        **not** re-executed.
    """

    requeued: Tuple[int, ...] = ()
    quarantined: Tuple[int, ...] = ()
    released: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.requeued or self.quarantined or self.released)

    def to_dict(self) -> Dict[str, List[int]]:
        """JSON-ready dictionary of this report."""
        return {
            "requeued": list(self.requeued),
            "quarantined": list(self.quarantined),
            "released": list(self.released),
        }

    @staticmethod
    def merge(reports: List["ReapReport"]) -> "ReapReport":
        """Union of several layout reports (indices concatenated sorted)."""
        return ReapReport(
            requeued=tuple(sorted(i for r in reports for i in r.requeued)),
            quarantined=tuple(
                sorted(i for r in reports for i in r.quarantined)
            ),
            released=tuple(sorted(i for r in reports for i in r.released)),
        )


def _move_or_absorb(backend, source: str, target: str) -> bool:
    """Atomic move that also resolves the interrupted-mover double-key state.

    On object semantics a mover interrupted between the conditional
    create of ``target`` and the generation-guarded delete of ``source``
    leaves the object under **both** keys — and every later move onto
    ``target`` then loses its conditional put to the orphaned copy,
    which would otherwise stall the task forever (claims of it fail
    too, because the stale claim occupies the claims key).  Janitors
    resolve that state here: when the move fails while both keys still
    exist, the stale ``source`` is dropped and the transition is
    complete — safe because task payloads are immutable, so the two
    copies are byte-identical.

    One subtlety guards against a mover that *stalled* rather than
    died: its generation-guarded delete of the other key may still be
    pending, and if it fired after this absorb it would remove the
    surviving copy — losing the task outright.  Re-publishing the
    surviving ``target`` first bumps its generation, so any such
    pending guarded delete fails its precondition and the stalled mover
    harmlessly reports a lost move.  On the directory backend
    ``rename`` overwrites the target, so a failed move always means
    "source gone" and the absorb path never fires.
    """
    if backend.move(source, target):
        return True
    surviving = backend.get(target)
    if surviving is not None and backend.exists(source):
        backend.put(target, surviving)  # invalidate pending stale deletes
        backend.delete(source)
        return True
    return False


def _quarantine(root: str, claimed_path: str, index: int, attempts: int,
                owner: object, *, store: StoreLike) -> Optional[bool]:
    """Move a poisoned task to ``failed/`` and publish a failure result.

    Returns True on quarantine, False when another janitor won the
    move, and ``None`` when the task turned out to be *completed* — a
    stalled final-attempt worker can publish its (successful) result
    between the reaper's done-snapshot and this call, and a success must
    never be clobbered by a failure notice: the fresh re-check plus the
    exclusive (never-overwrite) result write guarantee it survives.
    """
    backend = resolve_store(store)
    failed_path = os.path.join(root, _FAILED_DIR, _task_filename(index))
    if not _move_or_absorb(backend, claimed_path, failed_path):
        return False  # another janitor (or the worker itself) won
    backend.delete(_lease_path(claimed_path))
    if index in published_indices(root, store=backend):
        # completed after all — drop the quarantine, the work is done
        backend.delete(failed_path)
        return None
    published = _atomic_write_exclusive(root, _RESULTS_DIR,
                                        _task_filename(index), (
        index, False,
        f"task {index} quarantined after {attempts} expired lease(s) "
        f"(last owner: {owner!r}); its task file is preserved at "
        f"{failed_path!r} — fix the poison pill and re-enqueue it, or "
        f"raise max_retries if the workers were killed externally"
    ), store=backend)
    if not published:
        # a loose success result landed in the microsecond window after
        # the re-check; the task is done, not poisoned
        backend.delete(failed_path)
        return None
    return True


def _requeue(root: str, claimed_path: str, index: int, attempts: int, *,
             store: StoreLike) -> bool:
    """Move an expired claim back to ``tasks/`` for another attempt."""
    backend = resolve_store(store)
    # drop the dead owner's sidecar BEFORE the move makes the task
    # claimable again: afterwards a fast worker may already have
    # re-claimed it and written a fresh sidecar we must not delete
    backend.delete(_lease_path(claimed_path))
    target = os.path.join(root, _TASKS_DIR, os.path.basename(claimed_path))
    if not _move_or_absorb(backend, claimed_path, target):
        return False  # lost the race to another janitor or the worker
    record_attempt(root, index, attempts, store=backend)
    return True


def _batch_lease_map(root: str, names: List[str], *, store: StoreLike
                     ) -> Dict[str, Dict[str, object]]:
    """Member claim basename -> batch lease record, for every batch marker.

    Batch members carry no individual sidecars — their lease (owner,
    deadline, length) lives on the ``claims/batch-*.pkl`` marker's
    record, whose ``"batch"`` key lists the members.  Records missing
    the list (a heartbeat raced the write) fall back to the marker
    payload itself.  Markers that vanished between the listing and the
    read contribute nothing: their members are either released or — if
    a janitor died mid-resolution — recovered by the classic per-claim
    path via the mtime fallback.
    """
    backend = resolve_store(store)
    claims_dir = os.path.join(root, _CLAIMS_DIR)
    members: Dict[str, Dict[str, object]] = {}
    for name in names:
        if not (name.startswith(_BATCH_PREFIX) and name.endswith(".pkl")):
            continue
        marker_path = os.path.join(claims_dir, name)
        lease = backend.read_lease(marker_path)
        batch = (lease or {}).get("batch")
        if not batch:
            data = backend.get(marker_path)
            if data is None:
                continue  # released/resolved while scanning
            try:
                batch = pickle.loads(data)
            except (EOFError, pickle.UnpicklingError, ValueError):
                continue
        for member in batch:
            members[str(member)] = lease or {}
    return members


def reap_layout(root: str, *, max_retries: Optional[int] = None,
                now: Optional[float] = None,
                store: StoreLike = None) -> ReapReport:
    """One reaper pass over a single queue layout.

    Scans ``claims/`` for leases whose **absolute deadline** (carried in
    the lease record, renewed by worker heartbeats; legacy records fall
    back to the claim mtime plus the lease length) has passed.  Each
    expired claim is resolved by exactly one janitor via an atomic store
    move:

    * result already published -> the claim is released (the worker died
      after finishing; completed work is never re-executed);
    * attempts left -> re-queued into ``tasks/`` with its attempt count
      bumped (``attempts/``);
    * attempts exhausted -> quarantined into ``failed/`` with an
      ``ok=False`` result, failing collectors fast instead of letting a
      poison pill crash-loop the fleet forever.

    **Batched leases** (``tasks_per_claim > 1``) resolve as a unit: a
    member claim covered by a *live* batch marker is never touched, and
    an expired batch drops its marker first, then resolves every
    remaining member.  Members whose results are published are
    released; the **first** unpublished member — deterministically the
    one in flight when the worker died, because batches execute in
    order — takes the attempt bump (and, once exhausted, the
    quarantine); the trailing members never started, so they re-queue
    with no attempt charged.  At ``tasks_per_claim=1`` no marker exists
    and this degenerates to exactly the classic protocol.

    ``now`` injects a wall-clock for deterministic expiry tests.
    """
    backend = resolve_store(store)
    if max_retries is None:
        max_retries = default_max_retries()
    claims_dir = os.path.join(root, _CLAIMS_DIR)
    names = sorted(backend.list_dir(claims_dir))
    current = time.time() if now is None else now
    default_lease = default_lease_s()
    requeued: List[int] = []
    quarantined: List[int] = []
    released: List[int] = []
    done_indices: Optional[set] = None
    names_present = set(names)
    batch_members = _batch_lease_map(root, names, store=backend)
    for name in names:
        if not name.endswith(".pkl"):
            # lease sidecars ride along with their claim — but a sidecar
            # whose claim is gone is an orphan (released/re-queued claim
            # resurrected by an in-flight heartbeat's rewrite) that no
            # other path ever cleans; drop it once no claim stands
            # behind it (probed, to tolerate a listing race with a
            # brand-new claimant)
            if name.endswith(LEASE_SUFFIX):
                claim_name = name[:-len(LEASE_SUFFIX)]
                if claim_name not in names_present and \
                        not backend.exists(os.path.join(claims_dir,
                                                        claim_name)):
                    backend.delete(os.path.join(claims_dir, name))
            continue
        if name.startswith(_BATCH_PREFIX):
            continue  # markers resolve whole-batch, below
        if name in batch_members:
            continue  # leased through its batch marker, not individually
        claimed_path = os.path.join(claims_dir, name)
        lease = backend.read_lease(claimed_path)
        deadline = backend.lease_deadline(claimed_path, lease,
                                          default_lease_s=default_lease)
        if deadline is None or current < deadline:
            continue  # finished meanwhile, or the lease is still live
        index = _task_index(name)
        # a worker that died between publishing the result and releasing
        # the claim left completed work behind: drop the claim, never
        # re-execute (the "no double-execution of completed work" rule).
        # The published result may already live inside a compacted bundle,
        # so the check covers bundles too — computed lazily, only once an
        # expired claim actually exists (the rare path)
        if done_indices is None:
            done_indices = published_indices(root, store=backend)
        if index in done_indices:
            backend.delete(claimed_path)
            backend.delete(_lease_path(claimed_path))
            released.append(index)
            continue
        attempts = read_attempts(root, index, store=backend) + 1
        owner = (lease or {}).get("owner")
        if attempts > max_retries:
            outcome = _quarantine(root, claimed_path, index, attempts - 1,
                                  owner, store=backend)
            if outcome:
                quarantined.append(index)
            elif outcome is None:  # completed in the snapshot gap
                released.append(index)
        elif _requeue(root, claimed_path, index, attempts, store=backend):
            requeued.append(index)
    for name in names:
        if not (name.startswith(_BATCH_PREFIX) and name.endswith(".pkl")):
            continue
        marker_path = os.path.join(claims_dir, name)
        lease = backend.read_lease(marker_path)
        deadline = backend.lease_deadline(marker_path, lease,
                                          default_lease_s=default_lease)
        if deadline is None or current < deadline:
            continue  # released meanwhile, or the batch is still live
        batch = (lease or {}).get("batch")
        if not batch:
            data = backend.get(marker_path)
            if data is None:
                continue
            try:
                batch = pickle.loads(data)
            except (EOFError, pickle.UnpicklingError, ValueError):
                batch = []
        # the batch is dead: drop marker + lease *first* so a stalled
        # worker's next heartbeat sees the loss and stops touching member
        # claims that now belong to the reaper
        backend.delete(marker_path)
        backend.delete(_lease_path(marker_path))
        owner = (lease or {}).get("owner")
        if done_indices is None:
            done_indices = published_indices(root, store=backend)
        in_flight_resolved = False
        for member in batch:
            member = str(member)
            claimed_path = os.path.join(claims_dir, member)
            if not backend.exists(claimed_path):
                continue  # finished and released, or drained back
            try:
                index = _task_index(member)
            except ValueError:
                continue  # foreign object named in a corrupt record
            if index in done_indices:
                backend.delete(claimed_path)
                backend.delete(_lease_path(claimed_path))
                released.append(index)
                continue
            if not in_flight_resolved:
                # batches execute in order, so the first unpublished
                # member is the one that was in flight at death — only
                # it is charged an attempt (and, exhausted, quarantined)
                in_flight_resolved = True
                attempts = read_attempts(root, index, store=backend) + 1
                if attempts > max_retries:
                    outcome = _quarantine(root, claimed_path, index,
                                          attempts - 1, owner,
                                          store=backend)
                    if outcome:
                        quarantined.append(index)
                    elif outcome is None:  # completed in the gap
                        released.append(index)
                elif _requeue(root, claimed_path, index, attempts,
                              store=backend):
                    requeued.append(index)
                continue
            # trailing members never started: re-queue without a bump
            if _move_or_absorb(backend, claimed_path,
                               os.path.join(root, _TASKS_DIR, member)):
                requeued.append(index)
    return ReapReport(requeued=tuple(requeued),
                      quarantined=tuple(quarantined),
                      released=tuple(released))


def reap(root: str, *, max_retries: Optional[int] = None,
         now: Optional[float] = None,
         store: StoreLike = None) -> ReapReport:
    """Reap every layout under ``root`` (the root itself plus ``run-*``)."""
    backend = resolve_store(store)
    return ReapReport.merge([
        reap_layout(layout, max_retries=max_retries, now=now, store=backend)
        for layout in _layout_roots(root, store=backend)
    ])


def result_entries(root: str, *, store: StoreLike = None
                   ) -> Dict[int, Tuple[bool, object]]:
    """All published results of one layout, keyed by task index.

    The public face of the collector's result reader: loose per-task
    files and compacted bundles alike, duplicate indices collapsed (the
    payloads are byte-identical by the determinism contract).  This is
    the seam the sharded-sweep collector (:mod:`repro.eval.shard`) uses
    to salvage a partition's published results into an append-only
    columnar segment before retiring the partition namespace.
    """
    return _read_result_entries(root, store=store)


def _loose_result_files(root: str, *, store: StoreLike = None) -> List[str]:
    """Sorted loose (un-bundled) result names of one layout."""
    backend = resolve_store(store)
    return sorted(
        name for name in backend.list_dir(os.path.join(root, _RESULTS_DIR))
        if name.endswith(".pkl") and not name.startswith(_BUNDLE_PREFIX)
    )


def compact_layout(root: str, *, chunk_size: int = DEFAULT_COMPACT_THRESHOLD,
                   partial: bool = False,
                   store: StoreLike = None) -> int:
    """Merge loose result files of one layout into chunked bundles.

    Groups of ``chunk_size`` loose results become one
    ``results/bundle-<first>-<hex>.pkl`` holding their ``(index, ok,
    payload)`` entries; the loose files actually read are deleted after
    the bundle is atomically published.  With ``partial`` the final
    under-sized group is bundled too (end-of-run compaction); without it
    only full chunks are bundled, so nothing happens until at least
    ``chunk_size`` loose files exist — which makes this function double
    as its own trigger threshold.

    Concurrent compactors (or a compactor racing a collector) are safe:
    bundle names are unique, a loose file deleted mid-read is skipped,
    and overlapping bundles merely carry duplicate entries that collapse
    by index at read time.  Returns the number of bundles written.
    """
    backend = resolve_store(store)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    loose = _loose_result_files(root, store=backend)
    if not partial and len(loose) < chunk_size:
        return 0
    results_dir = os.path.join(root, _RESULTS_DIR)
    bundles_written = 0
    for start in range(0, len(loose), chunk_size):
        group = loose[start:start + chunk_size]
        if not partial and len(group) < chunk_size:
            break
        entries: List[Tuple[int, bool, object]] = []
        consumed: List[str] = []
        for name in group:
            data = backend.get(os.path.join(results_dir, name))
            if data is None:
                continue  # a racing compactor bundled it already
            entries.append(pickle.loads(data))
            consumed.append(name)
        if not entries:
            continue
        first = min(index for index, _, _ in entries)
        bundle_name = f"{_BUNDLE_PREFIX}{first:07d}-{uuid.uuid4().hex[:8]}.pkl"
        backend.put(os.path.join(results_dir, bundle_name),
                    pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))
        for name in consumed:
            backend.delete(os.path.join(results_dir, name))
        bundles_written += 1
    return bundles_written


def compact(root: str, *, chunk_size: int = DEFAULT_COMPACT_THRESHOLD,
            partial: bool = False, store: StoreLike = None) -> int:
    """Compact every layout under ``root``; returns bundles written."""
    backend = resolve_store(store)
    return sum(
        compact_layout(layout, chunk_size=chunk_size, partial=partial,
                       store=backend)
        for layout in _layout_roots(root, store=backend)
    )


@dataclass(frozen=True)
class LayoutStatus:
    """Machine-readable state of one queue layout.

    Beyond the queued/claimed/done/failed counts, the autoscaling
    signals: ``queue_depth`` (pending tasks nobody started — the
    scale-up driver) and ``oldest_claim_age_s`` (seconds since the
    stalest live claim's last lease renewal; a value well beyond the
    lease length means orphans are awaiting the reaper).
    """

    queued: int
    claimed: int
    done: int
    failed: int
    loose_results: int
    bundles: int
    owners: Tuple[str, ...] = ()
    attempts: Dict[int, int] = field(default_factory=dict)
    oldest_claim_age_s: float = 0.0

    @property
    def queue_depth(self) -> int:
        """Pending tasks nobody has started (alias of ``queued``)."""
        return self.queued

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary of this status."""
        return {
            "queued": self.queued,
            "claimed": self.claimed,
            "done": self.done,
            "failed": self.failed,
            "loose_results": self.loose_results,
            "bundles": self.bundles,
            "owners": sorted(self.owners),
            "attempts": {str(k): v for k, v in sorted(self.attempts.items())},
            "queue_depth": self.queue_depth,
            "oldest_claim_age_s": round(self.oldest_claim_age_s, 3),
        }


def _list_tasks(root: str, subdir: str, *, store: StoreLike) -> List[str]:
    return [name
            for name in resolve_store(store).list_dir(
                os.path.join(root, subdir))
            if name.endswith(".pkl")]


@dataclass(frozen=True)
class ClaimsSummary:
    """One pass over a layout's claims: ownership, liveness, staleness."""

    claimed: int
    owners: Tuple[str, ...]
    live_owners: frozenset
    oldest_age_s: float


def _scan_claims(root: str, *, now: float,
                 store: StoreLike = None) -> ClaimsSummary:
    """Scan a layout's claims once for every lease-derived signal.

    Both :func:`layout_status` and :func:`autoscale_advisory` consume
    this, so the "last renewal = deadline - lease length" age arithmetic
    lives in exactly one place.  Deliberately touches only the claims
    listing and lease sidecars — O(claims), never the result set.
    Batch markers are bookkeeping, not tasks: they are not counted, and
    their members take owner/deadline/age from the batch lease record.
    """
    backend = resolve_store(store)
    default_lease = default_lease_s()
    names = _list_tasks(root, _CLAIMS_DIR, store=backend)
    batch_members = _batch_lease_map(root, names, store=backend)
    claimed = 0
    owners: List[str] = []
    live_owners = set()
    oldest_age = 0.0
    for name in names:
        if name.startswith(_BATCH_PREFIX):
            continue  # a lease vehicle; its members carry the work
        claimed += 1
        claimed_path = os.path.join(root, _CLAIMS_DIR, name)
        lease = batch_members.get(name) or backend.read_lease(claimed_path)
        owner = (lease or {}).get("owner")
        if owner:
            owners.append(str(owner))
        deadline = backend.lease_deadline(claimed_path, lease,
                                          default_lease_s=default_lease)
        if deadline is None:
            continue  # finished while we scanned
        # the claim's last renewal happened one lease length before its
        # recorded deadline
        lease_s = lease_length(lease, default_lease)
        oldest_age = max(oldest_age, now - (deadline - lease_s))
        if now < deadline and owner:
            live_owners.add(str(owner))
    return ClaimsSummary(claimed=claimed, owners=tuple(owners),
                         live_owners=frozenset(live_owners),
                         oldest_age_s=max(0.0, oldest_age))


def layout_status(root: str, *, now: Optional[float] = None,
                  store: StoreLike = None) -> LayoutStatus:
    """Queue counts of one layout.

    ``done`` counts distinct *successful* result indices, ``failed`` the
    distinct failed ones (worker tracebacks and quarantined poison pills
    alike) — so ``done == expected`` really means the run succeeded, and
    ``done + failed`` never double-counts a task.
    """
    backend = resolve_store(store)
    current = time.time() if now is None else now
    claims = _scan_claims(root, now=current, store=backend)
    all_entries = _read_result_entries(root, store=backend)
    entries = {index: payload for index, payload in all_entries.items()
               if payload[0]}
    failed_indices = {index for index, payload in all_entries.items()
                      if not payload[0]}
    failed_indices.update(
        _task_index(name)
        for name in _list_tasks(root, _FAILED_DIR, store=backend)
    )
    loose = _loose_result_files(root, store=backend)
    bundles = [name for name in _list_tasks(root, _RESULTS_DIR, store=backend)
               if name.startswith(_BUNDLE_PREFIX)]
    attempts: Dict[int, int] = {}
    for name in _list_tasks(root, _ATTEMPTS_DIR, store=backend):
        index = _task_index(name)
        count = read_attempts(root, index, store=backend)
        if count:
            attempts[index] = count
    return LayoutStatus(
        queued=len(_list_tasks(root, _TASKS_DIR, store=backend)),
        claimed=claims.claimed,
        done=len(entries),
        failed=len(failed_indices),
        loose_results=len(loose),
        bundles=len(bundles),
        owners=claims.owners,
        attempts=attempts,
        oldest_claim_age_s=claims.oldest_age_s,
    )


def desired_workers(queued: int, claimed: int, *,
                    tasks_per_worker: Optional[int] = None,
                    min_workers: int = 0,
                    max_workers: Optional[int] = None,
                    current_workers: Optional[int] = None,
                    hysteresis_tasks: Optional[int] = None) -> int:
    """Worker count the backlog calls for (the autoscaling policy).

    Deterministic and deliberately simple: one worker per
    ``tasks_per_worker`` outstanding tasks (queued plus in-flight),
    rounded up and clamped to ``[min_workers, max_workers]``.  An empty
    queue asks for ``min_workers`` — scale-to-zero by default.

    Without ``current_workers`` the raw ceil-divide policy applies — and
    a backlog hovering at a ``tasks_per_worker`` boundary (say 8 vs 9 at
    4 tasks/worker) flips the answer between 2 and 3 every poll,
    flapping any scaler that obeys it.  Passing the fleet's **current**
    size turns on hysteresis: scale-up triggers immediately (backlog is
    latency), but scale-down only once the backlog falls
    ``hysteresis_tasks`` *below* the boundary that justifies the smaller
    fleet (default: half a worker's share, ``max(1, tasks_per_worker //
    2)``).  An empty backlog still asks for ``min_workers`` — hysteresis
    never blocks scale-to-zero.
    """
    if tasks_per_worker is None:
        tasks_per_worker = DEFAULT_TASKS_PER_WORKER
    if tasks_per_worker < 1:
        raise ValueError("tasks_per_worker must be >= 1")
    if max_workers is None:
        max_workers = DEFAULT_MAX_WORKERS
    if min_workers < 0 or max_workers < min_workers:
        raise ValueError(
            "need 0 <= min_workers <= max_workers, got "
            f"{min_workers}..{max_workers}"
        )
    if hysteresis_tasks is None:
        hysteresis_tasks = max(1, tasks_per_worker // 2)
    if hysteresis_tasks < 0:
        raise ValueError("hysteresis_tasks must be >= 0")
    backlog = max(0, int(queued)) + max(0, int(claimed))
    wanted = math.ceil(backlog / tasks_per_worker)
    if current_workers is not None and backlog > 0:
        current = max(0, int(current_workers))
        if wanted < current:
            # shrink only when the padded backlog no longer justifies
            # the current fleet; otherwise hold to damp boundary flap
            padded = math.ceil((backlog + hysteresis_tasks)
                               / tasks_per_worker)
            wanted = current if padded >= current else padded
    return max(min_workers, min(max_workers, wanted))


def autoscale_advisory(root: str, *,
                       tasks_per_worker: Optional[int] = None,
                       min_workers: int = 0,
                       max_workers: Optional[int] = None,
                       hysteresis_tasks: Optional[int] = None,
                       current_workers: Optional[int] = None,
                       now: Optional[float] = None,
                       store: StoreLike = None) -> Dict[str, object]:
    """Machine-readable scale-up/down advisory for an external scaler.

    This is what ``python -m repro.runtime.queue <root> autoscale``
    prints and what a collecting executor feeds its ``autoscale_hook``.
    The advisory compares the backlog-driven :func:`desired_workers`
    against the fleet's current size:

    ``action``
        ``"scale_up"`` when the backlog wants more workers than the
        fleet has, ``"scale_down"`` when it wants fewer, ``"hold"``
        otherwise.
    ``desired_workers`` / ``live_workers``
        The recommendation and the lease census (live = distinct owners
        across unexpired leases).
    ``queue_depth`` / ``claimed`` / ``oldest_claim_age_s``
        The raw signals, fleet-wide: pending backlog, in-flight tasks,
        and seconds since the stalest claim's last lease renewal (a
        value far beyond the lease length means orphans are awaiting
        the reaper, not that more workers are needed).

    ``current_workers`` (default: the live-lease count) is the fleet
    size the comparison — and the scale-down hysteresis of
    :func:`desired_workers` — anchors to; pass the scaler's own fleet
    size when it knows better than the lease census — the supervisor
    does, since an idle worker holds no lease at all.
    """
    backend = resolve_store(store)
    current = time.time() if now is None else now
    queued = claimed = 0
    live_owners: set = set()
    oldest_age = 0.0
    # deliberately touches only tasks/ listings and claims/ leases —
    # never results/ — so driving a scaler from the maintenance cycle of
    # a huge sweep costs O(claims), not O(all published results)
    for layout in _layout_roots(root, store=backend):
        queued += len(_list_tasks(layout, _TASKS_DIR, store=backend))
        claims = _scan_claims(layout, now=current, store=backend)
        claimed += claims.claimed
        live_owners |= claims.live_owners
        oldest_age = max(oldest_age, claims.oldest_age_s)
    live = len(live_owners)
    anchor = live if current_workers is None else max(0, int(current_workers))
    wanted = desired_workers(queued, claimed,
                             tasks_per_worker=tasks_per_worker,
                             min_workers=min_workers,
                             max_workers=max_workers,
                             current_workers=anchor,
                             hysteresis_tasks=hysteresis_tasks)
    if wanted > anchor:
        action = "scale_up"
        reason = (f"backlog of {queued + claimed} task(s) wants {wanted} "
                  f"worker(s); fleet at {anchor} ({live} hold live leases)")
    elif wanted < anchor:
        action = "scale_down"
        reason = (f"backlog of {queued + claimed} task(s) needs only "
                  f"{wanted} worker(s); fleet at {anchor} "
                  f"({live} hold live leases)")
    else:
        action = "hold"
        reason = f"{anchor} worker(s) match the backlog"
    return {
        "action": action,
        "reason": reason,
        "desired_workers": wanted,
        "live_workers": live,
        "queue_depth": queued,
        "claimed": claimed,
        "oldest_claim_age_s": round(oldest_age, 3),
    }


def status(root: str, *, store: StoreLike = None) -> Dict[str, object]:
    """Aggregate queue state under ``root``: totals plus per-layout detail.

    This is what ``python -m repro.runtime.queue <root> status`` prints;
    the top-level ``queued`` / ``claimed`` / ``done`` / ``failed`` keys
    are the fleet-wide counts a monitoring script wants — joined by the
    autoscaling signals ``queue_depth`` (pending backlog),
    ``oldest_claim_age_s`` (stalest live claim) and ``desired_workers``
    (what the default :func:`desired_workers` policy recommends) —
    while ``layouts`` maps each layout (``.`` is the root itself) to its
    full breakdown.
    """
    backend = resolve_store(store)
    now = time.time()
    layouts = _layout_roots(root, store=backend)
    per_layout = {
        os.path.relpath(layout, root): layout_status(layout, now=now,
                                                     store=backend)
        for layout in layouts
    }
    totals = {"queued": 0, "claimed": 0, "done": 0, "failed": 0}
    oldest_age = 0.0
    for layout in per_layout.values():
        totals["queued"] += layout.queued
        totals["claimed"] += layout.claimed
        totals["done"] += layout.done
        totals["failed"] += layout.failed
        oldest_age = max(oldest_age, layout.oldest_claim_age_s)
    return {
        **totals,
        "queue_depth": totals["queued"],
        "oldest_claim_age_s": round(oldest_age, 3),
        "desired_workers": desired_workers(totals["queued"],
                                           totals["claimed"]),
        "layouts": {name: s.to_dict() for name, s in per_layout.items()},
    }
