"""Shared-memory chunk transport for same-host parallel execution.

The process/queue backends move work by pickle.  For
:meth:`repro.bnn.model.InferenceEngine.forward_batch` that means every
chunk task pickles an engine-sized input slice out to the worker and the
result rows back — pure serialisation tax, since all workers sit on the
same host.  This module provides the zero-copy alternative:

* the parent copies the batch **once** into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  preallocates a second segment for the output rows;
* tasks carry only an :class:`ArrayDescriptor` — ``(name, dtype, shape,
  offset)`` — plus the row range to compute, a few dozen bytes of pickle
  per task;
* workers :func:`attach_view` read-only to the input, compute, and write
  their rows straight into the output segment.

**Ownership and cleanup rules** (load-bearing for crash safety):

* The parent — and only the parent — creates and unlinks segments,
  always through a :class:`SharedArrayPool` used as a context manager.
  An ``atexit`` hook backstops pools that were never closed, so even an
  exception-path leak dies with the parent process.
* Workers only ever *attach*; they never create or unlink.  A SIGKILLed
  worker therefore cannot leak a segment: the kernel drops its mapping
  with the process, and the parent's unlink at pool close removes the
  name.  Worker-side attachments are deregistered from the CPython
  ``resource_tracker`` (which would otherwise unlink segments it never
  owned when the worker exits — the Python <= 3.12 over-tracking bug).
* Descriptors are only meaningful on the host that created them, so the
  transport is gated by ``REPRO_RUNTIME_SHM``: ``auto`` (default)
  enables it for process pools, which are same-host by construction;
  ``on`` additionally enables it for queue executors, an operator
  assertion that every queue worker on that root is local; ``off``
  disables it everywhere (remote dir/object queue fleets keep the
  pickle path).
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

#: environment toggle of the transport: ``auto`` (default) / ``on`` / ``off``
SHM_ENV = "REPRO_RUNTIME_SHM"

_SHM_MODES = ("auto", "on", "off")


def shm_mode() -> str:
    """The resolved ``REPRO_RUNTIME_SHM`` mode (unset/invalid -> ``auto``)."""
    raw = os.environ.get(SHM_ENV, "").strip().lower()
    return raw if raw in _SHM_MODES else "auto"


@dataclass(frozen=True)
class ArrayDescriptor:
    """Picklable handle to an ndarray living in a shared-memory segment.

    ``name`` is the segment name, ``dtype``/``shape`` describe the array
    and ``offset`` is the byte offset of its first element inside the
    segment (pools currently always place arrays at offset 0; the field
    exists so sub-allocating pools stay wire-compatible).
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


class SharedArrayPool:
    """Parent-side owner of a set of shared-memory array segments.

    Use as a context manager: every segment created through
    :meth:`share` / :meth:`allocate` is closed *and unlinked* on exit.
    Pools that escape their ``with`` (or are never given one) are swept
    by an ``atexit`` hook, so segments can outlive their pool only if
    the parent is SIGKILLed — and then the stdlib ``resource_tracker``
    (which registered the create) unlinks them.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._views: Dict[str, np.ndarray] = {}
        self._closed = False
        _live_pools.append(self)

    # -------------------------------------------------------------- #
    # allocation
    # -------------------------------------------------------------- #
    def _create(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise RuntimeError("SharedArrayPool is closed")
        segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments.append(segment)
        return segment

    def share(self, array: np.ndarray) -> ArrayDescriptor:
        """Copy ``array`` into a new segment; returns its descriptor."""
        array = np.ascontiguousarray(array)
        segment = self._create(array.nbytes)
        descriptor = ArrayDescriptor(segment.name, array.dtype.str,
                                     tuple(array.shape))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._views[segment.name] = view
        return descriptor

    def allocate(self, shape: Tuple[int, ...],
                 dtype: object) -> ArrayDescriptor:
        """Preallocate an (uninitialised) output array segment."""
        dtype = np.dtype(dtype)
        nbytes = int(dtype.itemsize * int(np.prod(shape)))
        segment = self._create(nbytes)
        descriptor = ArrayDescriptor(segment.name, dtype.str, tuple(shape))
        self._views[segment.name] = np.ndarray(shape, dtype=dtype,
                                               buffer=segment.buf)
        return descriptor

    def view(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """The parent's own (writable) view of a pool-owned segment."""
        try:
            return self._views[descriptor.name]
        except KeyError:
            raise KeyError(f"segment {descriptor.name!r} is not owned by "
                           f"this pool") from None

    def read(self, descriptor: ArrayDescriptor) -> np.ndarray:
        """A private copy of a pool-owned segment's array."""
        return np.array(self.view(descriptor), copy=True)

    # -------------------------------------------------------------- #
    # teardown
    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # views hold buffer references — drop them before close() or the
        # BufferError from an exported pointer would leak the segment
        self._views.clear()
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments = []
        try:
            _live_pools.remove(self)
        except ValueError:
            pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()


#: pools not yet closed — swept at interpreter exit so an exception path
#: that skipped ``close()`` cannot leave named segments behind
_live_pools: List[SharedArrayPool] = []


def _sweep_pools() -> None:  # pragma: no cover - exercised via subprocess
    for pool in list(_live_pools):
        pool.close()


atexit.register(_sweep_pools)


# ------------------------------------------------------------------ #
# worker side: attach-only access
# ------------------------------------------------------------------ #

#: per-process attachment cache so a worker maps each segment once per
#: pool lifetime instead of once per task; keyed by segment name.  The
#: owning pid is tracked because ``fork`` would otherwise hand children
#: a cache of handles they must not reuse bookkeeping for.
_attached: Dict[str, shared_memory.SharedMemory] = {}
_attached_pid: Optional[int] = None


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    CPython <= 3.12 registers every ``SharedMemory(name=...)`` attach
    with the ``resource_tracker``, which then unlinks the segment when
    the attaching process exits — destroying a segment the parent still
    owns (and, under fork pools where parent and child share one tracker
    process, corrupting the parent's own registration).  3.13 grew
    ``track=False`` for exactly this; here registration is suppressed
    for the duration of the attach instead.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:  # pragma: no cover - shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_view(descriptor: ArrayDescriptor, *,
                readonly: bool = True) -> np.ndarray:
    """An ndarray view over an attached segment (worker side).

    The attachment is cached per process; views are read-only unless the
    caller is writing result rows into an output descriptor.
    """
    global _attached_pid
    if _attached_pid != os.getpid():
        # forked child: the inherited handles belong to the parent's
        # bookkeeping; start a fresh cache (mappings are freed at exit)
        _attached.clear()
        _attached_pid = os.getpid()
    segment = _attached.get(descriptor.name)
    if segment is None:
        segment = _attach_untracked(descriptor.name)
        _attached[descriptor.name] = segment
    view = np.ndarray(descriptor.shape, dtype=np.dtype(descriptor.dtype),
                      buffer=segment.buf, offset=descriptor.offset)
    view.flags.writeable = not readonly
    return view


def detach_all() -> None:
    """Close this process's cached attachments (never unlinks)."""
    for segment in _attached.values():
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - exported view
            pass
    _attached.clear()


# ------------------------------------------------------------------ #
# transport gating
# ------------------------------------------------------------------ #

def use_shm_transport(executor: object) -> bool:
    """Should chunk traffic to ``executor`` ride shared memory?

    ``auto``: process pools only (same host by construction).  ``on``:
    also queue executors — the operator asserts every worker on that
    queue root is local.  ``off``: never.  Serial/thread executors
    always decline (nothing is pickled, so there is nothing to save).
    """
    mode = shm_mode()
    if mode == "off":
        return False
    from repro.runtime.executors import ProcessExecutor  # lazy: no cycle

    if isinstance(executor, ProcessExecutor):
        return True
    if mode == "on":
        from repro.runtime.queue import QueueExecutor

        return isinstance(executor, QueueExecutor)
    return False
