"""Pluggable executor backends over the shared work-list abstraction.

One substrate, four backends:

* :class:`SerialExecutor` — in-process, in-order; the semantic oracle.
* :class:`ThreadExecutor` — a thread pool; NumPy's BLAS and bit-twiddling
  kernels release the GIL, so threads genuinely overlap the packed
  inference chunks while still sharing the per-process memoisation caches.
* :class:`ProcessExecutor` — a :mod:`multiprocessing` pool (this absorbs the
  pool handling previously inlined in ``repro.eval.sweep``).  Task functions
  and arguments must be picklable; each worker process owns private
  memoisation caches, which is correct because every task argument is
  self-contained and seeded.
* :class:`~repro.runtime.queue.QueueExecutor` — the file/dir work-queue seam
  for multi-host execution (registered here, implemented in
  :mod:`repro.runtime.queue`).

All backends return results in submission order, so any call site that is
deterministic under :class:`SerialExecutor` stays bit-identical under every
other backend — the contract the sweep and inference-engine tests enforce.

Backend selection honours the ``REPRO_RUNTIME_BACKEND`` environment
variable (used by CI to force the whole sweep path through the process
backend) via :func:`resolve_executor`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional

from repro.runtime.tasks import WorkList, run_serially

#: environment variable forcing a default backend (e.g. CI sets
#: ``REPRO_RUNTIME_BACKEND=process`` to shake out executor regressions)
BACKEND_ENV = "REPRO_RUNTIME_BACKEND"

#: default worker count of the pooled backends when none is requested
_DEFAULT_POOL_WORKERS = 2


class Executor:
    """Base class of every runtime backend.

    An executor runs a :class:`~repro.runtime.tasks.WorkList` and returns
    the results in submission order.  Executors are context managers;
    :meth:`close` releases pooled resources and is idempotent.
    """

    #: registry key of this backend (``"serial"``, ``"thread"``, ...)
    name: str = "abstract"

    def execute(self, worklist: WorkList) -> List[object]:  # pragma: no cover - interface
        """Run every task and return results in submission order."""
        raise NotImplementedError

    def map(self, fn: Callable[[object], object],
            items: Iterable[object]) -> List[object]:
        """Apply ``fn`` to every item (ordered), like built-in ``map``."""
        return self.execute(WorkList.from_items(fn, items))

    def close(self) -> None:
        """Release backend resources (idempotent; serial backends no-op)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process, in-order execution — the oracle backend."""

    name = "serial"

    def execute(self, worklist: WorkList) -> List[object]:
        return run_serially(worklist)


class ThreadExecutor(Executor):
    """Thread-pool execution sharing the caller's memoisation caches.

    Suited to tasks dominated by GIL-releasing NumPy kernels (the packed
    inference chunks, BLAS matmuls).  Tasks must not mutate shared state in
    ways that change *values*; benign races on memoisation caches (two
    threads computing the same deterministic entry) are fine.
    """

    name = "thread"

    def __init__(self, workers: int = _DEFAULT_POOL_WORKERS) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def execute(self, worklist: WorkList) -> List[object]:
        if len(worklist) <= 1 or self.workers == 1:
            return run_serially(worklist)
        pool = self._ensure_pool()
        # Executor.map yields results in submission order regardless of
        # completion order, preserving the bit-identical contract
        return list(pool.map(lambda task: task.run(), worklist.tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(workers={self.workers})"


def _run_task_pair(pair):
    """Module-level trampoline (picklable) running one (fn, arg) pair."""
    fn, arg = pair
    return fn(arg)


class ProcessExecutor(Executor):
    """Process-pool execution for CPU-bound, picklable task functions.

    This is the backend the design-space sweeps used inline before the
    runtime layer existed: ``multiprocessing.Pool.map`` fans the tasks out
    and returns results in submission order.  Determinism across worker
    counts holds because every task argument carries its own derived seed
    and workers share nothing — each process rebuilds its memoisation
    caches on first use.
    """

    name = "process"

    def __init__(self, workers: int = _DEFAULT_POOL_WORKERS) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def execute(self, worklist: WorkList) -> List[object]:
        if len(worklist) <= 1 or self.workers == 1:
            return run_serially(worklist)
        # a fresh pool per work list keeps the executor stateless and
        # re-entrant (nested sweeps, pytest-xdist style reuse); pool spawn
        # cost is negligible against the analytical/functional task bodies
        with multiprocessing.Pool(processes=self.workers) as pool:
            fns = {id(task.fn) for task in worklist}
            if len(fns) == 1:
                # the common map() shape: one shared fn.  Passing it as the
                # pool.map callable pickles it once per dispatch batch, not
                # once per task — a heavyweight callable (e.g. a _ChunkTask
                # holding a whole packed InferenceEngine) must not cross
                # the IPC boundary once per chunk
                return pool.map(worklist.tasks[0].fn,
                                [task.arg for task in worklist])
            pairs = [(task.fn, task.arg) for task in worklist]
            return pool.map(_run_task_pair, pairs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={self.workers})"


def _reject_options(backend: str, options: Dict[str, object]) -> None:
    if options:
        raise ValueError(
            f"the {backend!r} backend takes no options, got "
            f"{sorted(options)} (backend options like lease_s/max_retries/"
            f"compact_threshold/store apply to the 'queue' backend)"
        )


def _serial_factory(workers: int, options: Dict[str, object]) -> Executor:
    _reject_options("serial", options)
    return SerialExecutor()


def _thread_factory(workers: int, options: Dict[str, object]) -> Executor:
    _reject_options("thread", options)
    return ThreadExecutor(workers)


def _process_factory(workers: int, options: Dict[str, object]) -> Executor:
    _reject_options("process", options)
    return ProcessExecutor(workers)


def _queue_factory(workers: int, options: Dict[str, object]) -> Executor:
    # local import: repro.runtime.queue imports from this module
    from repro.runtime.queue import QUEUE_DIR_ENV, QueueExecutor

    # REPRO_RUNTIME_QUEUE_DIR makes the multi-host mode reachable through
    # the registry: the executor enqueues into the shared directory and
    # cooperates with any `python -m repro.runtime.queue <dir>` workers
    # pointed at it; unset, the backend is self-contained on a temp dir.
    # The fleet-hardening knobs (lease_s, max_retries, compact_threshold)
    # and the storage backend (store="dir"/"object", autoscale_hook)
    # arrive either as explicit options or via their REPRO_RUNTIME_* env
    # toggles, which QueueExecutor resolves itself.
    shared_root = os.environ.get(QUEUE_DIR_ENV, "").strip() or None
    return QueueExecutor(shared_root, workers=workers, **options)


_BACKEND_FACTORIES: Dict[str, Callable[[int, Dict[str, object]], Executor]] = {
    "serial": _serial_factory,
    "thread": _thread_factory,
    "process": _process_factory,
    "queue": _queue_factory,
}

#: valid values of ``backend=`` kwargs and :data:`BACKEND_ENV`
BACKENDS = tuple(sorted(_BACKEND_FACTORIES))


def make_executor(backend: str, *, workers: Optional[int] = None,
                  options: Optional[Dict[str, object]] = None) -> Executor:
    """Instantiate a backend by registry name.

    ``options`` holds backend-specific constructor keywords — today the
    queue backend's fleet-hardening knobs (``lease_s``, ``max_retries``,
    ``compact_threshold``, ``timeout_s``, ...) plus its storage selection
    (``store="dir"``/``"object"`` or a ``QueueStore`` instance) and
    ``autoscale_hook``; backends without knobs reject a non-empty dict so
    misdirected options fail loudly.
    """
    factory = _BACKEND_FACTORIES.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown runtime backend {backend!r}; choose from {BACKENDS}"
        )
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    return factory(workers if workers is not None else _DEFAULT_POOL_WORKERS,
                   dict(options or {}))


def backend_from_env() -> Optional[str]:
    """Backend name requested via :data:`BACKEND_ENV` (``None`` if unset)."""
    value = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not value:
        return None
    if value not in _BACKEND_FACTORIES:
        raise ValueError(
            f"{BACKEND_ENV}={value!r} is not a runtime backend; "
            f"choose from {BACKENDS}"
        )
    return value


def resolve_executor(*, backend: Optional[str] = None,
                     workers: Optional[int] = None,
                     env: bool = True,
                     options: Optional[Dict[str, object]] = None) -> Executor:
    """Resolve the executor for a ``(backend=, workers=)`` call-site pair.

    Precedence: an explicit ``backend`` wins; otherwise :data:`BACKEND_ENV`
    (when ``env`` is true); otherwise the historical ``workers`` semantics —
    ``None``/``0``/``1`` run serially, larger counts select the process
    backend (exactly what ``run_sweep(workers=...)`` did before the runtime
    layer existed, so existing callers keep their behaviour bit-for-bit).

    ``options`` (backend-specific constructor keywords, e.g. the queue
    backend's ``lease_s``/``max_retries``/``compact_threshold``) requires
    a backend to be resolved explicitly or via the environment — silently
    dropping options on the legacy ``workers`` path would hide misconfig.
    """
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    effective_workers = workers if workers else None
    if backend is None and env:
        backend = backend_from_env()
    if backend is not None:
        return make_executor(backend, workers=effective_workers,
                             options=options)
    if options:
        raise ValueError(
            "backend options were given but no backend was resolved "
            f"(explicit backend= or {BACKEND_ENV}); the legacy workers= "
            "path would silently drop them"
        )
    if effective_workers is not None and effective_workers > 1:
        return ProcessExecutor(workers=effective_workers)
    return SerialExecutor()
