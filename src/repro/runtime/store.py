"""Pluggable queue-storage backends: the `QueueStore` seam.

The work-queue protocol (:mod:`repro.runtime.queue`) and its janitor
(:mod:`repro.runtime.janitor`) are pure state machines over a handful of
storage verbs — list, get, put, put-if-absent, atomic move, delete, and
lease read/renew.  This module owns those verbs.  Everything above it is
backend-agnostic: the enqueue/claim/heartbeat/requeue/quarantine/compact
machinery never touches the filesystem (or any other substrate)
directly, so pointing the fleet at a new storage technology means
implementing one small class here, not re-auditing the protocol.

Two backends ship today:

:class:`DirStore`
    The original POSIX-directory layout (byte-compatible with queues
    created before the store seam existed): atomic ``os.rename`` moves,
    ``os.link`` exclusive publishes, tmp+rename atomic writes.  The
    default, selected when nothing else is configured.

:class:`ObjectStore`
    S3-style semantics over an object API: there is no rename, so every
    state transition is a **conditional put** (create-if-absent) of the
    destination followed by a **generation-guarded delete** of the
    source, with rollback when the precondition fails.  Backed in-repo
    by :class:`LocalObjectStore`, a hermetic fake with injectable
    latency and conflict/fault hooks so the whole crash-recovery suite
    runs against object semantics without any cloud credentials.

Leases
------

Claims are time-bounded leases.  The lease record (a pickle sidecar next
to the claim object) carries the **absolute deadline**::

    {"owner": "host:pid", "lease_s": 30.0, "deadline": 1753870000.0}

Reapers compare ``deadline`` against their own wall clock — the shared
storage's timestamps never enter the comparison, so reaping stays
correct when workers and the storage substrate disagree on clocks (the
NFS / object-store case).  :class:`DirStore` keeps two compatibility
affordances for queues written by older code: a legacy sidecar without a
``deadline`` falls back to the claim file's mtime plus the lease length,
and every lease write also bumps the claim mtime so mtime-based tooling
keeps agreeing with the record.

Backend selection
-----------------

``REPRO_RUNTIME_STORE`` (``dir`` | ``object``) selects the default
backend process-wide; explicit ``store=`` arguments (a name or a
:class:`QueueStore` instance) on the protocol functions,
:class:`~repro.runtime.queue.QueueExecutor`, ``make_executor`` /
``resolve_executor`` ``options=`` and ``run_sweep`` /
``run_accuracy_sweep`` ``backend_options=`` always win.  Worker
subprocesses resolve the same environment variable, so one exported
toggle moves a whole fleet.  ``REPRO_RUNTIME_FAULTS`` (a JSON
:class:`~repro.runtime.faults.FaultPlan`) additionally wires every
name-resolved store to one seeded chaos schedule — the fleet-wide
fault-injection seam the chaos soak and ``bench_chaos.py`` drive.
"""

from __future__ import annotations

import itertools
import os
import pickle
import random
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.faults import FAULTS_ENV, FaultPlan
from repro.runtime.resilience import BackoffPolicy, retry_call

#: environment variable selecting the queue-storage backend fleet-wide
STORE_ENV = "REPRO_RUNTIME_STORE"

#: subdirectory a layout must carry to count as a queue layout
_TASKS_DIR = "tasks"

#: suffix of the lease-metadata sidecar next to each claim object
LEASE_SUFFIX = ".lease"

#: marker object an object-store layout writes at init time — object
#: stores have no directories, so an *empty* layout (all tasks claimed)
#: would otherwise become undiscoverable by workers scanning the root
_LAYOUT_MARKER = ".layout"


def _prefix_lock_path(prefix: str) -> str:
    """Hidden advisory-lock file guarding one object prefix."""
    prefix = prefix.rstrip(os.sep)
    return os.path.join(os.path.dirname(prefix),
                        f".{os.path.basename(prefix)}.lock")


#: staging-file name counter: pid + counter is unique per process and an
#: order of magnitude cheaper than a UUID on the per-put hot path
_TMP_COUNTER = itertools.count()


def _tmp_name(key: str) -> str:
    """Collision-free staging name next to ``key`` (same filesystem)."""
    return f"{key}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp"


def lease_path(claimed_path: str) -> str:
    """Lease sidecar key of a claim key (pure string helper)."""
    return claimed_path + LEASE_SUFFIX


class QueueStore:
    """Interface every queue-storage backend implements.

    Keys are plain path-like strings (the protocol layer joins them with
    ``os.path.join``); a store maps them onto its substrate.  The verbs
    are deliberately few — see the module docstring for the contract
    each backend must honour (atomic publish, exactly-one-winner move,
    never-overwrite exclusive put, absolute-deadline leases).
    """

    #: registry key of this backend (``"dir"``, ``"object"``)
    name: str = "abstract"

    # -- layout lifecycle -------------------------------------------------
    def init_layout(self, root: str) -> None:
        """Create a queue layout under ``root`` (idempotent)."""
        raise NotImplementedError

    def is_layout(self, root: str) -> bool:
        """Whether ``root`` holds a queue layout this store can serve."""
        raise NotImplementedError

    def list_layouts(self, root: str, *,
                     run_prefix: "str | Tuple[str, ...]") -> List[str]:
        """Layout roots reachable under ``root`` (itself + namespaces).

        ``run_prefix`` is one namespace prefix or a tuple of them (the
        protocol layer passes ``("run-", "part-")`` so executor run
        namespaces and sharded-sweep partitions are discovered alike).
        """
        roots: List[str] = []
        if self.is_layout(root):
            roots.append(root)
        for name in sorted(self.list_children(root)):
            if name.startswith(run_prefix):
                candidate = os.path.join(root, name)
                if self.is_layout(candidate):
                    roots.append(candidate)
        return roots

    def list_children(self, root: str) -> List[str]:
        """Names of child prefixes/directories directly under ``root``.

        The default suits any locally-mounted substrate (both shipped
        backends); a store over a remote bucket would override it with a
        delimiter listing.
        """
        try:
            return [name for name in os.listdir(root)
                    if os.path.isdir(os.path.join(root, name))]
        except OSError:
            return []

    def create_ephemeral_root(self) -> str:
        """A private throwaway root (the executor's single-host mode)."""
        return tempfile.mkdtemp(prefix="repro-queue-")

    def remove_tree(self, root: str) -> None:
        """Delete ``root`` and everything under it (quiet, recursive)."""
        raise NotImplementedError

    # -- object verbs -----------------------------------------------------
    def list_dir(self, directory: str) -> List[str]:
        """Object names directly under ``directory`` ([] when absent)."""
        raise NotImplementedError

    def get(self, path: str) -> Optional[bytes]:
        """Object bytes, or ``None`` when the object does not exist."""
        raise NotImplementedError

    def put(self, path: str, data: bytes) -> None:
        """Atomically publish ``data`` at ``path`` (overwrite allowed).

        Readers must never observe a half-written object.
        """
        raise NotImplementedError

    def put_if_absent(self, path: str, data: bytes) -> bool:
        """Publish only if ``path`` does not exist; False when it does.

        The primitive the janitor uses to publish a *failure* result
        without ever destroying a success a stalled worker published
        first.
        """
        raise NotImplementedError

    def delete(self, path: str) -> None:
        """Remove an object (quiet no-op when it is already gone)."""
        raise NotImplementedError

    def move(self, source: str, target: str) -> bool:
        """Atomically transition an object from ``source`` to ``target``.

        Exactly one of any number of concurrent movers of ``source``
        succeeds; the rest return False and must leave both keys
        untouched.  This is the verb claims, re-queues and quarantines
        are built on.
        """
        raise NotImplementedError

    def move_read(self, source: str, target: str) -> Optional[bytes]:
        """:meth:`move`, returning the moved object's bytes on success.

        ``None`` when the move was lost.  This generic composition
        re-reads the target after the move; backends whose move already
        holds the payload in hand (the object store copies it) override
        this to skip the extra round-trip — the verb batched claims
        prefetch task payloads through.
        """
        if not self.move(source, target):
            return None
        return self.get(target)

    # -- leases -----------------------------------------------------------
    def write_lease(self, claimed_path: str,
                    record: Dict[str, object]) -> None:
        """Publish a claim's lease record (sidecar next to the claim)."""
        raise NotImplementedError

    def read_lease(self, claimed_path: str) -> Optional[Dict[str, object]]:
        """A claim's lease record (``None`` when the sidecar is missing).

        A missing sidecar means either the claim predates the lease
        protocol or the claimant sits in the short window between the
        claim move and the sidecar write; callers fall back to the
        default lease length and an unknown owner.  Built on
        :meth:`get`, so backends share one parse/validate path.
        """
        data = self.get(lease_path(claimed_path))
        if data is None:
            return None
        try:
            record = pickle.loads(data)
        except (EOFError, pickle.UnpicklingError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def renew_lease(self, claimed_path: str, *,
                    default_lease_s: float,
                    now: Optional[float] = None) -> bool:
        """Extend a claim's lease deadline by its lease length.

        Returns False when the claim object is gone (task finished, or a
        reaper re-queued it).  The existence probe is metadata-only —
        a heartbeat must stay cheap, never streaming the (potentially
        engine-sized) claim payload from shared storage every quarter
        lease.  The renewal preserves the record's owner: after an
        expiry the sidecar may already belong to a new claimant, and
        extending *their* deadline slightly is harmless where rewriting
        their identity would not be.
        """
        if not self.exists(claimed_path):
            return False
        record = dict(self.read_lease(claimed_path) or {})
        lease_s = lease_length(record, default_lease_s)
        record["lease_s"] = lease_s
        record["deadline"] = (time.time() if now is None else now) + lease_s
        self.write_lease(claimed_path, record)
        return True

    def lease_deadline(self, claimed_path: str,
                       record: Optional[Dict[str, object]], *,
                       default_lease_s: float) -> Optional[float]:
        """Absolute wall-clock deadline of a claim's lease.

        ``None`` when the claim object vanished (it finished meanwhile).
        The deadline carried in the lease record wins; backends may fall
        back to substrate timestamps for legacy records without one.
        """
        deadline = _record_deadline(record)
        if deadline is not None:
            return deadline
        created = self.object_mtime(claimed_path)
        if created is None:
            return None
        return created + lease_length(record, default_lease_s)

    def object_mtime(self, path: str) -> Optional[float]:
        """Last-modified time of an object (legacy-lease fallback only)."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        """Metadata-only existence probe (never reads the payload)."""
        return self.object_mtime(path) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def lease_length(record: Optional[Dict[str, object]],
                 default_lease_s: float) -> float:
    """Lease length of a record, tolerating missing/corrupt values."""
    try:
        return float((record or {}).get("lease_s") or default_lease_s)
    except (TypeError, ValueError):
        return default_lease_s


def _record_deadline(record: Optional[Dict[str, object]]
                     ) -> Optional[float]:
    value = (record or {}).get("deadline")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


# --------------------------------------------------------------------------- #
# DirStore: the original POSIX-directory layout
# --------------------------------------------------------------------------- #

#: subdirectories of the on-disk layout (kept byte-compatible with queues
#: created before the store seam existed)
_DIR_LAYOUT = ("tasks", "claims", "results", "failed", "attempts", "tmp")


class DirStore(QueueStore):
    """The on-disk directory backend: POSIX renames and hard links.

    Layout-compatible with queues created by the pre-store code — the
    same subdirectories, the same task/claim/result/lease file formats —
    so existing shared dirs and running ``python -m repro.runtime.queue``
    workers keep working across the upgrade.  Atomicity comes from the
    filesystem: ``os.rename`` for moves (exactly one winner),
    ``os.link`` for never-overwrite publishes, tmp+rename for atomic
    writes.
    """

    name = "dir"

    def init_layout(self, root: str) -> None:
        for sub in _DIR_LAYOUT:
            os.makedirs(os.path.join(root, sub), exist_ok=True)

    def is_layout(self, root: str) -> bool:
        return os.path.isdir(os.path.join(root, _TASKS_DIR))

    def remove_tree(self, root: str) -> None:
        shutil.rmtree(root, ignore_errors=True)

    def list_dir(self, directory: str) -> List[str]:
        try:
            return [name for name in os.listdir(directory)
                    if not name.endswith(".tmp")]
        except OSError:
            return []

    def get(self, path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def _stage(self, path: str, data: bytes) -> str:
        """Write ``data`` to a same-directory staging file (same-FS rename).

        Opens first and creates the directory only on ``ENOENT`` — in
        steady state every queue directory already exists, so the warm
        path pays one ``open`` instead of ``open`` + ``makedirs``.
        """
        tmp_path = _tmp_name(path)
        try:
            handle = open(tmp_path, "wb")
        except FileNotFoundError:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle = open(tmp_path, "wb")
        with handle:
            handle.write(data)
        return tmp_path

    def put(self, path: str, data: bytes) -> None:
        os.replace(self._stage(path, data), path)

    def put_if_absent(self, path: str, data: bytes) -> bool:
        tmp_path = self._stage(path, data)
        try:
            # os.link fails with EEXIST where os.replace would clobber
            os.link(tmp_path, path)
        except FileExistsError:
            return False
        finally:
            os.remove(tmp_path)
        return True

    def delete(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def move(self, source: str, target: str) -> bool:
        os.makedirs(os.path.dirname(target), exist_ok=True)
        try:
            os.rename(source, target)
        except OSError:
            return False  # another mover won, or the source is gone
        return True

    def write_lease(self, claimed_path: str,
                    record: Dict[str, object]) -> None:
        self.put(lease_path(claimed_path),
                 pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        # keep the claim mtime in agreement with the record so legacy
        # mtime-based tooling sharing the dir reads the same renewal time
        deadline = _record_deadline(record)
        lease_s = lease_length(record, 0.0)
        stamp = (deadline - lease_s) if deadline is not None else time.time()
        try:
            os.utime(claimed_path, (stamp, stamp))
        except OSError:
            pass  # claim already finished/reaped — the record is moot

    def object_mtime(self, path: str) -> Optional[float]:
        try:
            return os.path.getmtime(path)
        except OSError:
            return None


# --------------------------------------------------------------------------- #
# LocalObjectStore: a hermetic S3-style object API
# --------------------------------------------------------------------------- #

class LocalObjectStore:
    """In-repo fake of an S3-style object API (hermetic, cross-process).

    Implements the object-store contract the :class:`ObjectStore`
    backend is written against:

    * objects are immutable blobs named by key (here: a filesystem path,
      so operators can inspect a fake bucket with ordinary tools);
    * every successful write returns a **generation token** that changes
      on every mutation of the key;
    * ``put_if_absent`` is the S3 ``If-None-Match: *`` conditional
      create, ``delete_if_generation`` the generation-guarded delete —
      the two primitives the queue protocol's rename-free state
      transitions are built from;
    * there are no directories and no renames.

    Atomicity of the conditional verbs is the *server's* job in a real
    object store; the fake provides it with a per-prefix advisory lock
    (``<prefix>.lock`` next to the data, never inside it), which also
    makes the fake safe for the crash-recovery suite's real worker
    subprocesses.

    Chaos hooks:

    ``fault_plan``
        A seeded :class:`~repro.runtime.faults.FaultPlan` driving
        latency spikes, injected I/O errors and conflict storms from
        one reproducible RNG stream — the schedule every failure
        message names by seed.  Worker subprocesses pick the same plan
        up from the ``REPRO_RUNTIME_FAULTS`` environment variable (see
        :func:`resolve_store`), so a whole fleet drills identically.
    ``latency_s``
        Sleep this long before every operation, simulating a slow
        object-store round trip (flat; the plan's spikes stack on top).
    ``conflict_hook``
        ``(op, key) -> bool`` called before each *conditional* verb;
        returning True forces a simulated precondition failure.
    ``fault_hook``
        ``(op, key) -> None`` called before every verb; raise to
        simulate a transport fault.

    The callable hooks remain for tests that need full scripted
    control; the plan is consulted first, then the hooks.
    """

    def __init__(self, *, latency_s: float = 0.0,
                 conflict_hook: Optional[Callable[[str, str], bool]] = None,
                 fault_hook: Optional[Callable[[str, str], None]] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.latency_s = float(latency_s)
        self.conflict_hook = conflict_hook
        self.fault_hook = fault_hook
        self.fault_plan = fault_plan

    # -- hooks ------------------------------------------------------------
    def _enter(self, op: str, key: str) -> None:
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        if self.fault_plan is not None:
            spike = self.fault_plan.latency_s(op, key)
            if spike > 0:
                time.sleep(spike)
            self.fault_plan.check_fault(op, key)
        if self.fault_hook is not None:
            self.fault_hook(op, key)

    def _forced_conflict(self, op: str, key: str) -> bool:
        if (self.fault_plan is not None
                and self.fault_plan.forced_conflict(op, key)):
            return True
        return (self.conflict_hook is not None
                and bool(self.conflict_hook(op, key)))

    # -- locking ----------------------------------------------------------
    class _PrefixLock:
        """Advisory cross-process lock over one key prefix (directory)."""

        def __init__(self, key: str) -> None:
            # the lock lives NEXT TO the prefix (hidden, dot-prefixed),
            # never inside it, so data listings only ever see objects
            # and prefix scans (run-* namespaces) never see locks
            self._path = _prefix_lock_path(os.path.dirname(key))
            self._handle = None

        def __enter__(self) -> "LocalObjectStore._PrefixLock":
            import fcntl

            try:
                self._handle = open(self._path, "a+b")
            except FileNotFoundError:
                os.makedirs(os.path.dirname(self._path), exist_ok=True)
                self._handle = open(self._path, "a+b")
            fcntl.flock(self._handle, fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc_info: object) -> None:
            import fcntl

            if self._handle is not None:
                fcntl.flock(self._handle, fcntl.LOCK_UN)
                self._handle.close()
                self._handle = None

    @staticmethod
    def _generation(path: str) -> Optional[Tuple[int, int, int]]:
        """Current generation token of a key (``None`` when absent)."""
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    # -- object API -------------------------------------------------------
    def list(self, prefix: str) -> List[str]:
        """Object names directly under ``prefix`` ([] when empty)."""
        self._enter("list", prefix)
        try:
            names = os.listdir(prefix)
        except OSError:
            return []
        prefix_path = prefix
        return [name for name in names
                if not name.endswith((".lock", ".tmp"))
                and os.path.isfile(os.path.join(prefix_path, name))]

    def get(self, key: str) -> Optional[bytes]:
        """Object bytes (``None`` when the key does not exist)."""
        self._enter("get", key)
        try:
            with open(key, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def get_with_generation(self, key: str
                            ) -> Optional[Tuple[bytes, Tuple[int, int, int]]]:
        """Object bytes plus the generation token they were read at.

        Lock-free: the token is ``fstat``-ed from the *open descriptor*
        the bytes are read through, so it describes exactly the inode
        that was read — a concurrent replace swaps the directory entry
        but cannot touch this snapshot.  Reads are the hottest verb on
        the claim path; no lock round-trip is paid.
        """
        self._enter("get", key)
        try:
            handle = open(key, "rb")
        except OSError:
            return None
        with handle:
            stat = os.fstat(handle.fileno())
            data = handle.read()
        return data, (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    def head(self, key: str) -> Optional[Dict[str, float]]:
        """Object metadata (currently: ``last_modified``); None if absent."""
        self._enter("head", key)
        try:
            return {"last_modified": os.path.getmtime(key)}
        except OSError:
            return None

    @staticmethod
    def _write(key: str, data: bytes) -> None:
        """Hook-free atomic write (the server-side commit primitive).

        Opens first, creating the prefix only on ``ENOENT`` — steady
        state pays a single ``open``, not ``open`` + ``makedirs``.
        """
        tmp_path = _tmp_name(key)
        try:
            handle = open(tmp_path, "wb")
        except FileNotFoundError:
            os.makedirs(os.path.dirname(key), exist_ok=True)
            handle = open(tmp_path, "wb")
        with handle:
            handle.write(data)
        os.replace(tmp_path, key)

    def put(self, key: str, data: bytes) -> None:
        """Unconditional atomic put (last writer wins, like S3 PUT)."""
        self._enter("put", key)
        self._write(key, data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Conditional create (``If-None-Match: *``); False on conflict."""
        return self.put_if_absent_with_generation(key, data) is not None

    def put_if_absent_with_generation(
            self, key: str, data: bytes) -> Optional[Tuple[int, int, int]]:
        """Conditional create returning the created object's generation.

        ``None`` signals the conflict (the key already exists); the
        returned token lets the creator later delete *exactly* the
        object version it made — the guard a mover's rollback needs so
        it can never destroy a different actor's later object.
        """
        self._enter("put_if_absent", key)
        if self._forced_conflict("put_if_absent", key):
            return None
        # lock-free: ``link`` atomically publishes the staged bytes only
        # if the key is absent (EEXIST otherwise) — the kernel arbitrates
        # the single winner, and the created generation is ``fstat``-ed
        # off the staging inode (the same inode the link points at)
        tmp_path = _tmp_name(key)
        try:
            handle = open(tmp_path, "wb")
        except FileNotFoundError:
            os.makedirs(os.path.dirname(key), exist_ok=True)
            handle = open(tmp_path, "wb")
        try:
            with handle:
                handle.write(data)
                handle.flush()
                stat = os.fstat(handle.fileno())
            try:
                os.link(tmp_path, key)
            except FileExistsError:
                return None  # the key already exists: conflict
            return (stat.st_ino, stat.st_mtime_ns, stat.st_size)
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:  # pragma: no cover - cleanup best effort
                pass

    def delete(self, key: str) -> None:
        """Unconditional delete (quiet when the key is already gone)."""
        self._enter("delete", key)
        try:
            os.remove(key)
        except OSError:
            pass

    def delete_if_generation(self, key: str,
                             generation: Tuple[int, int, int]) -> bool:
        """Generation-guarded delete; False when the key changed or left."""
        self._enter("delete_if_generation", key)
        if self._forced_conflict("delete_if_generation", key):
            return False
        with self._PrefixLock(key):
            if self._generation(key) != generation:
                return False
            try:
                os.remove(key)
            except OSError:
                pass
        return True

    def remove_prefix(self, prefix: str) -> None:
        """Bulk-delete every object under ``prefix`` (campaign cleanup)."""
        self._enter("delete", prefix)
        shutil.rmtree(prefix, ignore_errors=True)
        try:
            os.remove(_prefix_lock_path(prefix))
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LocalObjectStore(latency_s={self.latency_s}, "
                f"hooks={bool(self.conflict_hook or self.fault_hook)}, "
                f"fault_plan={self.fault_plan!r})")


# --------------------------------------------------------------------------- #
# ObjectStore: the queue-storage backend over the object API
# --------------------------------------------------------------------------- #

#: per-verb retry schedule of the object backend: quick and bounded —
#: a worker behind a real outage should fail (and be re-queued by the
#: reaper / restarted by the supervisor) rather than hang forever
DEFAULT_STORE_RETRY = BackoffPolicy(base_delay_s=0.01, max_delay_s=0.25,
                                    multiplier=3.0, max_attempts=5)


class ObjectStore(QueueStore):
    """Queue storage over S3-style object semantics: no renames.

    Every protocol transition that :class:`DirStore` performs with one
    ``os.rename`` is recomposed from the object API's two conditional
    primitives:

    ``move(source, target)``
        1. read ``source`` with its generation token;
        2. conditional-create ``target`` (``put_if_absent``) — losing
           this race means another mover already owns the transition;
        3. generation-guarded delete of ``source`` — losing *this* race
           means someone moved or mutated the source while we copied, so
           the half-made copy is rolled back and the move reports
           failure.

        A crash between (2) and (3) leaves the object under both keys
        (and, for a claim, blocks re-claims of that task because the
        orphaned copy occupies the claims key); the reaper resolves that
        state once the orphan's lease expires — its move-or-absorb path
        drops a stale source whose target already exists, which is safe
        because task payloads are immutable and byte-identical.

    Exclusive result publishes map directly onto ``put_if_absent``, and
    lease records live in ordinary sidecar objects whose **absolute
    deadline** keeps reaping independent of object timestamps.

    Transient transport faults (timeouts, injected
    :class:`~repro.runtime.faults.FaultInjected` drops) are retried
    **per primitive object call** under a decorrelated-jitter
    :class:`~repro.runtime.resilience.BackoffPolicy` — never around the
    composite ``move``, whose steps must each run at most once past
    their precondition check.  The object API raises faults before a
    verb takes effect, so a retried primitive is side-effect-free.
    """

    name = "object"

    def __init__(self, objects: Optional[LocalObjectStore] = None, *,
                 retry: Optional[BackoffPolicy] = None,
                 retry_rng: Optional[random.Random] = None) -> None:
        self.objects = objects if objects is not None else LocalObjectStore()
        self.retry = DEFAULT_STORE_RETRY if retry is None else retry
        self._retry_rng = retry_rng if retry_rng is not None \
            else random.Random()

    def _call(self, fn: Callable[[], object]) -> object:
        """One primitive object-API call under the transient-retry policy."""
        return retry_call(fn, policy=self.retry, rng=self._retry_rng)

    def init_layout(self, root: str) -> None:
        # object stores have no directories: mark the layout explicitly
        # so an empty (fully claimed) layout stays discoverable
        marker = os.path.join(root, _LAYOUT_MARKER)
        self._call(lambda: self.objects.put_if_absent(marker, b""))

    def is_layout(self, root: str) -> bool:
        marker = os.path.join(root, _LAYOUT_MARKER)
        if self._call(lambda: self.objects.head(marker)) is not None:
            return True
        # layouts initialised by other tooling (e.g. a DirStore producer
        # sharing the bucket mount) still count when they carry tasks
        return os.path.isdir(os.path.join(root, _TASKS_DIR))

    def remove_tree(self, root: str) -> None:
        self._call(lambda: self.objects.remove_prefix(root))

    def list_dir(self, directory: str) -> List[str]:
        return self._call(lambda: self.objects.list(directory))

    def get(self, path: str) -> Optional[bytes]:
        return self._call(lambda: self.objects.get(path))

    def put(self, path: str, data: bytes) -> None:
        self._call(lambda: self.objects.put(path, data))

    def put_if_absent(self, path: str, data: bytes) -> bool:
        return self._call(lambda: self.objects.put_if_absent(path, data))

    def delete(self, path: str) -> None:
        self._call(lambda: self.objects.delete(path))

    def move(self, source: str, target: str) -> bool:
        return self.move_read(source, target) is not None

    def move_read(self, source: str, target: str) -> Optional[bytes]:
        # the copy step necessarily reads the payload, so returning it
        # is free — no extra round-trip, unlike the base composition
        got = self._call(lambda: self.objects.get_with_generation(source))
        if got is None:
            return None  # the source is already gone
        data, generation = got
        created = self._call(
            lambda: self.objects.put_if_absent_with_generation(target, data)
        )
        if created is None:
            return None  # another mover owns this transition
        if not self._call(
                lambda: self.objects.delete_if_generation(source, generation)):
            # the source changed hands while we copied: roll back the
            # half-made copy — guarded by *our* creation's generation,
            # so a stalled mover waking up here can never destroy an
            # object a later actor has since put under the same key
            self._call(
                lambda: self.objects.delete_if_generation(target, created)
            )
            return None
        return data

    def write_lease(self, claimed_path: str,
                    record: Dict[str, object]) -> None:
        data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._call(
            lambda: self.objects.put(lease_path(claimed_path), data)
        )

    def object_mtime(self, path: str) -> Optional[float]:
        meta = self._call(lambda: self.objects.head(path))
        return None if meta is None else meta["last_modified"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectStore(objects={self.objects!r})"


# --------------------------------------------------------------------------- #
# FaultInjectingStore: chaos wrapper over any QueueStore
# --------------------------------------------------------------------------- #

class FaultInjectingStore(QueueStore):
    """Wrap any :class:`QueueStore` in a seeded :class:`FaultPlan`.

    :class:`LocalObjectStore` consults a plan natively; this wrapper
    brings the *directory* backend (or any future store) into the same
    chaos drills: every verb first asks the plan for a latency spike
    and an injected fault, and the conditional verbs (``move``,
    ``put_if_absent``) can be forced to report a precondition failure.
    Forced conflicts are reported *without* touching the substrate —
    exactly how a lost conditional put presents — so the protocol's
    conflict-handling paths are exercised, never corrupted.

    ``name`` mirrors the wrapped store so supervisor-spawned workers
    can be pointed at the same backend by registry name (they assemble
    their own plan from ``REPRO_RUNTIME_FAULTS``).
    """

    def __init__(self, inner: QueueStore, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name

    def _enter(self, op: str, key: str) -> None:
        spike = self.plan.latency_s(op, key)
        if spike > 0:
            time.sleep(spike)
        self.plan.check_fault(op, key)

    # -- layout lifecycle -------------------------------------------------
    def init_layout(self, root: str) -> None:
        self._enter("put", root)
        self.inner.init_layout(root)

    def is_layout(self, root: str) -> bool:
        self._enter("head", root)
        return self.inner.is_layout(root)

    def list_children(self, root: str) -> List[str]:
        self._enter("list", root)
        return self.inner.list_children(root)

    def create_ephemeral_root(self) -> str:
        return self.inner.create_ephemeral_root()

    def remove_tree(self, root: str) -> None:
        self._enter("delete", root)
        self.inner.remove_tree(root)

    # -- object verbs -----------------------------------------------------
    def list_dir(self, directory: str) -> List[str]:
        self._enter("list", directory)
        return self.inner.list_dir(directory)

    def get(self, path: str) -> Optional[bytes]:
        self._enter("get", path)
        return self.inner.get(path)

    def put(self, path: str, data: bytes) -> None:
        self._enter("put", path)
        self.inner.put(path, data)

    def put_if_absent(self, path: str, data: bytes) -> bool:
        self._enter("put_if_absent", path)
        if self.plan.forced_conflict("put_if_absent", path):
            return False
        return self.inner.put_if_absent(path, data)

    def delete(self, path: str) -> None:
        self._enter("delete", path)
        self.inner.delete(path)

    def move(self, source: str, target: str) -> bool:
        self._enter("move", source)
        if self.plan.forced_conflict("move", source):
            return False
        return self.inner.move(source, target)

    # -- leases -----------------------------------------------------------
    def write_lease(self, claimed_path: str,
                    record: Dict[str, object]) -> None:
        self._enter("put", lease_path(claimed_path))
        self.inner.write_lease(claimed_path, record)

    def object_mtime(self, path: str) -> Optional[float]:
        self._enter("head", path)
        return self.inner.object_mtime(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjectingStore({self.inner!r}, plan={self.plan!r})"


# --------------------------------------------------------------------------- #
# Registry + resolution
# --------------------------------------------------------------------------- #

_STORE_FACTORIES: Dict[str, Callable[[], QueueStore]] = {
    "dir": DirStore,
    "object": ObjectStore,
}

#: valid values of ``store=`` arguments and :data:`STORE_ENV`
STORES = tuple(sorted(_STORE_FACTORIES))

#: process-wide singletons keyed by (backend name, FAULTS_ENV payload):
#: stores are stateless apart from chaos hooks, and keying on the raw
#: environment payload means tests toggling the fault plan always get a
#: store wired to *their* plan, never a stale cached one
_DEFAULT_STORES: Dict[Tuple[str, str], QueueStore] = {}


def make_store(name: str) -> QueueStore:
    """Instantiate a queue-storage backend by registry name."""
    factory = _STORE_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown queue store {name!r}; choose from {STORES}"
        )
    return factory()


def store_from_env() -> Optional[str]:
    """Store name requested via :data:`STORE_ENV` (``None`` if unset)."""
    value = os.environ.get(STORE_ENV, "").strip().lower()
    if not value:
        return None
    if value not in _STORE_FACTORIES:
        raise ValueError(
            f"{STORE_ENV}={value!r} is not a queue store; "
            f"choose from {STORES}"
        )
    return value


def _chaos_wrap(name: str, plan: Optional[FaultPlan]) -> QueueStore:
    """Instantiate backend ``name``, wired to ``plan`` when one is set."""
    if plan is None:
        return make_store(name)
    if name == "object":
        # the object fake consults plans natively — inject at the source
        # so conditional-verb conflicts surface through the real
        # generation-token code paths
        return ObjectStore(LocalObjectStore(fault_plan=plan))
    return FaultInjectingStore(make_store(name), plan)


def resolve_store(store: "Optional[str | QueueStore]" = None) -> QueueStore:
    """Resolve a ``store=`` argument to a :class:`QueueStore` instance.

    Precedence: an explicit instance is used as-is; an explicit name is
    instantiated from the registry; ``None`` resolves :data:`STORE_ENV`
    and finally defaults to the directory backend.

    When :data:`~repro.runtime.faults.FAULTS_ENV` carries a
    :class:`~repro.runtime.faults.FaultPlan`, name-resolved stores come
    wired to it — the seam that injects one seeded chaos schedule into
    every process of a fleet (worker subprocesses resolve the same
    environment).  Explicit instances are never wrapped: a test that
    built its own store keeps full control.
    """
    if isinstance(store, QueueStore):
        return store
    name = store if store is not None else (store_from_env() or "dir")
    if not isinstance(name, str):
        raise TypeError(
            f"store must be a QueueStore instance or a name from {STORES}, "
            f"got {store!r}"
        )
    if name not in _STORE_FACTORIES:
        raise ValueError(
            f"unknown queue store {name!r}; choose from {STORES}"
        )
    plan_env = os.environ.get(FAULTS_ENV, "").strip()
    cache_key = (name, plan_env)
    cached = _DEFAULT_STORES.get(cache_key)
    if cached is None:
        plan = FaultPlan.from_json(plan_env) if plan_env else None
        cached = _chaos_wrap(name, plan)
        _DEFAULT_STORES[cache_key] = cached
    return cached
