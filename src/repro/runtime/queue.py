"""Work-queue protocol over pluggable storage: the multi-host fleet seam.

The ROADMAP's "distributed sweep execution beyond one host" item needs a
transport that works over anything hosts can share — NFS, a synced
scratch directory, an S3-style object store.  This module defines that
protocol as a pure state machine over the small
:class:`~repro.runtime.store.QueueStore` interface (list / get / put /
put-if-absent / atomic move / delete / lease read+renew), and a
:class:`QueueExecutor` backend speaking it.  The storage side effects
live entirely in :mod:`repro.runtime.store` — the directory backend
(``DirStore``, the default, byte-compatible with queues created before
the seam existed) and the S3-semantics backend (``ObjectStore``,
conditional puts and generation tokens instead of renames) both run the
same protocol below.

Protocol (all keys relative to one queue layout root):

``tasks/task-NNNNNNN.pkl``
    One pending task: a pickle of ``(index, fn, arg)``, atomically
    published so a consumer can never observe a half-written object.
    When every task of a run shares one callable, ``fn`` is ``None`` and
    the callable lives in a single ``fn.pkl`` at the layout root instead
    — a heavyweight callable (e.g. a chunk task holding a whole packed
    inference engine) is serialised once per run, not once per task.
``claims/task-NNNNNNN.pkl``
    A task a worker holds a **lease** on, transitioned atomically out of
    ``tasks/`` via :meth:`~repro.runtime.store.QueueStore.move` — the
    move succeeds for exactly one worker, which is what makes concurrent
    workers safe without locks.
``claims/task-NNNNNNN.pkl.lease``
    Lease metadata sidecar: a pickle of ``{"owner", "lease_s",
    "deadline"}`` naming the worker (``host:pid``), its lease length and
    the **absolute wall-clock deadline** of the lease.  Workers renew
    the deadline with periodic **heartbeats** while the task runs, so a
    live worker holds a task indefinitely while a dead worker's claim
    expires one lease length after its last heartbeat.  Reapers compare
    the recorded deadline against their own clock — storage timestamps
    never enter the comparison (legacy sidecars without a deadline fall
    back to the claim mtime on the directory backend).
``claims/batch-<hex>.pkl`` (+ ``.lease`` sidecar)
    A **batch-claim marker**: when a worker claims ``tasks_per_claim >
    1`` tasks in one round-trip (:func:`claim_tasks`), the member claims
    carry no individual sidecars — one marker records the member list
    and one lease sidecar (whose record carries the same list under
    ``"batch"``) covers them all, heartbeated as a unit.  Members still
    publish results and release their claim files one by one, so crash
    recovery re-queues only the unfinished remainder of a dead worker's
    batch.
``results/task-NNNNNNN.pkl``
    The finished task: a pickle of ``(index, ok, payload)`` where ``ok``
    is a bool and ``payload`` is the result or the formatted error.
``results/bundle-NNNNNNN-<hex>.pkl``
    A compacted **result bundle**: a pickle of a list of ``(index, ok,
    payload)`` entries.  The compactor (:mod:`repro.runtime.janitor`)
    merges loose per-task results into bundles so collecting a 100k-task
    sweep opens hundreds of objects, not 100k.  Bundles may overlap
    loose files (or each other) transiently — readers key entries by
    index, and re-executed tasks republish byte-identical payloads, so
    duplicates are harmless by construction.
``attempts/task-NNNNNNN.pkl``
    Retry accounting: a plain-text integer counting how many times the
    task's lease expired and the reaper re-queued it.
``failed/task-NNNNNNN.pkl``
    Quarantine for poisoned tasks: after ``max_retries`` re-queues the
    reaper moves the task here (instead of crash-looping the fleet)
    and publishes an ``ok=False`` result so collectors fail fast.

Every :meth:`QueueExecutor.execute` call creates its own
``run-<unique-id>/`` layout under the shared root, so repeated or
concurrent runs over one root can never observe each other's task or
result files (a stale ``results/`` dir would otherwise satisfy a new
run's result poll).  Successful runs remove their namespace; failed runs
leave it behind with the error payloads for debugging.

Workers are stateless loops over ``claim -> heartbeat -> run -> publish``
across every layout under the root (the root itself, when callers drive
the protocol functions directly, plus all ``run-*`` namespaces); run one
with ``python -m repro.runtime.queue <root> serve --watch`` on every host
sharing the directory.  The CLI also exposes the janitor verbs —
``status`` (machine-readable queue counts plus queue-depth / claim-age /
desired-worker autoscaling signals), ``autoscale`` (a machine-readable
scale-up/down advisory), ``reap`` (re-queue orphaned claims) and
``compact`` (bundle loose results) — and drains gracefully on SIGTERM:
the in-flight task finishes and publishes before the process exits.
Results are reassembled in submission order, so queue execution stays
bit-identical with the serial oracle.

Tasks may execute more than once (a lease expiry re-queues work a slow or
dead worker already started), so task callables must be pure functions of
their argument — exactly the contract :mod:`repro.runtime.tasks` already
imposes for cross-backend determinism.

Environment knobs (all optional; see :func:`default_lease_s` etc.):

``REPRO_RUNTIME_QUEUE_DIR``
    Shared queue root the registry backend uses.
``REPRO_RUNTIME_STORE``
    Queue-storage backend (``dir`` | ``object``; default ``dir``).
``REPRO_RUNTIME_LEASE_S``
    Lease length in seconds (default 30).
``REPRO_RUNTIME_MAX_RETRIES``
    Re-queues before quarantine (default 3).
``REPRO_RUNTIME_COMPACT_THRESHOLD``
    Loose results per layout that trigger compaction, and the bundle
    size (default 512; 0 disables auto-compaction).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import signal
import socket
import threading
import time
import traceback
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.runtime.executors import Executor
from repro.runtime.store import (
    QueueStore,
    STORE_ENV,
    STORES,
    lease_path as _lease_path,
    resolve_store,
)
from repro.runtime.tasks import Task, WorkList, gather

#: a ``store=`` argument: a backend name, an instance, or None (resolve
#: the :data:`~repro.runtime.store.STORE_ENV` toggle / the dir default)
StoreLike = Union[None, str, QueueStore]

_TASKS_DIR = "tasks"
_CLAIMS_DIR = "claims"
_RESULTS_DIR = "results"
_FAILED_DIR = "failed"
_ATTEMPTS_DIR = "attempts"

#: per-execute namespace directories created under a shared queue root
_RUN_PREFIX = "run-"

#: sweep-partition namespace directories created under one sweep root by
#: the sharded-sweep planner (:mod:`repro.eval.shard`) — each partition
#: is a full, independently-queued layout, and workers/janitors pointed
#: at the sweep root discover them exactly like ``run-*`` namespaces
PART_PREFIX = "part-"

#: single shared task callable of one run (written when all tasks agree)
_SHARED_FN_FILE = "fn.pkl"

#: filename prefix of compacted result bundles under ``results/``
_BUNDLE_PREFIX = "bundle-"

#: filename prefix of batch-claim markers under ``claims/``: the pickled
#: member list of one multi-task lease (see :func:`claim_tasks`)
_BATCH_PREFIX = "batch-"

#: environment variable naming the shared queue root the registry backend
#: uses (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``); unset
#: selects the self-contained single-host mode on a private temp dir
QUEUE_DIR_ENV = "REPRO_RUNTIME_QUEUE_DIR"

#: environment variables overriding the fleet-hardening defaults
LEASE_ENV = "REPRO_RUNTIME_LEASE_S"
MAX_RETRIES_ENV = "REPRO_RUNTIME_MAX_RETRIES"
COMPACT_THRESHOLD_ENV = "REPRO_RUNTIME_COMPACT_THRESHOLD"
TASKS_PER_CLAIM_ENV = "REPRO_RUNTIME_TASKS_PER_CLAIM"

DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_RETRIES = 3
DEFAULT_COMPACT_THRESHOLD = 512
DEFAULT_TASKS_PER_CLAIM = 1

#: per-process cache of the *current* run's unpickled shared callable,
#: keyed by fn.pkl path.  Bounded to one entry: a shared callable can be
#: as heavy as a whole packed inference engine, and a long-lived --watch
#: worker serves runs one after another (claims drain layouts in sorted
#: order), so caching more than the run being drained only leaks memory.
_SHARED_FN_CACHE: dict = {}


def _env_number(name: str, default: float, convert) -> float:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return convert(value)
    except ValueError as error:
        raise ValueError(f"{name}={value!r} is not a valid number") from error


def default_lease_s() -> float:
    """Lease length in seconds (:data:`LEASE_ENV`, default 30)."""
    lease = _env_number(LEASE_ENV, DEFAULT_LEASE_S, float)
    if lease <= 0:
        raise ValueError(f"{LEASE_ENV} must be positive, got {lease}")
    return lease


def default_max_retries() -> int:
    """Re-queues before quarantine (:data:`MAX_RETRIES_ENV`, default 3)."""
    retries = _env_number(MAX_RETRIES_ENV, DEFAULT_MAX_RETRIES, int)
    if retries < 0:
        raise ValueError(f"{MAX_RETRIES_ENV} must be >= 0, got {retries}")
    return int(retries)


def default_compact_threshold() -> int:
    """Loose results triggering compaction (:data:`COMPACT_THRESHOLD_ENV`).

    Doubles as the bundle size; ``0`` disables automatic compaction
    (explicit ``compact`` CLI/API calls still work at the default size).
    """
    threshold = _env_number(
        COMPACT_THRESHOLD_ENV, DEFAULT_COMPACT_THRESHOLD, int
    )
    if threshold < 0:
        raise ValueError(
            f"{COMPACT_THRESHOLD_ENV} must be >= 0, got {threshold}"
        )
    return int(threshold)


def default_tasks_per_claim() -> int:
    """Tasks claimed under one lease (:data:`TASKS_PER_CLAIM_ENV`, default 1).

    1 is the classic PR-4/5 protocol — one claim, one sidecar, one
    heartbeat per task.  Larger values amortise the claim/lease/release
    round-trips over a whole batch, which is where the per-task protocol
    overhead goes on slow stores (see ``benchmarks/bench_sweep.py``).
    """
    n = _env_number(TASKS_PER_CLAIM_ENV, DEFAULT_TASKS_PER_CLAIM, int)
    if n < 1:
        raise ValueError(f"{TASKS_PER_CLAIM_ENV} must be >= 1, got {n}")
    return int(n)


def default_owner() -> str:
    """This worker's lease owner id (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _task_filename(index: int) -> str:
    return f"task-{index:07d}.pkl"


def _task_index(filename: str) -> int:
    """Inverse of :func:`_task_filename` (``task-0000012.pkl`` -> ``12``)."""
    return int(filename[len("task-"):-len(".pkl")])


def _dumps(payload: object) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def init_queue_dirs(root: str, *, store: StoreLike = None) -> None:
    """Create the queue layout under ``root`` (idempotent)."""
    resolve_store(store).init_layout(root)


def _atomic_write(root: str, subdir: str, filename: str, payload: object,
                  *, store: StoreLike = None) -> None:
    """Atomically publish pickled ``payload`` at ``root/subdir/filename``."""
    resolve_store(store).put(os.path.join(root, subdir, filename),
                             _dumps(payload))


def _atomic_write_exclusive(root: str, subdir: str, filename: str,
                            payload: object, *,
                            store: StoreLike = None) -> bool:
    """Like :func:`_atomic_write` but never overwrites; False if it exists.

    This maps to ``os.link`` (fails with ``EEXIST``) on the directory
    backend and a conditional put (``If-None-Match``) on object stores —
    the primitive the janitor uses to publish a *failure* result without
    ever destroying a success a stalled worker managed to publish first.
    """
    return resolve_store(store).put_if_absent(
        os.path.join(root, subdir, filename), _dumps(payload)
    )


def _atomic_write_text(root: str, subdir: str, filename: str, text: str,
                       *, store: StoreLike = None) -> None:
    """Like :func:`_atomic_write` but plain text (operator-inspectable)."""
    resolve_store(store).put(os.path.join(root, subdir, filename),
                             text.encode("utf-8"))


def write_shared_fn(root: str, fn, *, store: StoreLike = None) -> None:
    """Publish the run's single shared task callable (``fn.pkl``)."""
    resolve_store(store).put(os.path.join(root, _SHARED_FN_FILE), _dumps(fn))


def _load_shared_fn(root: str, store: QueueStore):
    path = os.path.join(root, _SHARED_FN_FILE)
    key = os.path.abspath(path)
    cached = _SHARED_FN_CACHE.get(key)
    if cached is None:
        data = store.get(path)
        if data is None:
            raise FileNotFoundError(path)
        cached = pickle.loads(data)
        _SHARED_FN_CACHE.clear()
        _SHARED_FN_CACHE[key] = cached
    return cached


def enqueue_task(root: str, task: Task, *, shared_fn: bool = False,
                 store: StoreLike = None) -> None:
    """Publish one pending task into the queue.

    With ``shared_fn`` the task file carries ``None`` in the callable slot
    and workers resolve it from the layout's ``fn.pkl`` (which the
    producer must have published via :func:`write_shared_fn` first).
    """
    _atomic_write(root, _TASKS_DIR, _task_filename(task.index),
                  (task.index, None if shared_fn else task.fn, task.arg),
                  store=store)


def read_lease(claimed_path: str, *,
               store: StoreLike = None) -> Optional[Dict[str, object]]:
    """Lease metadata of a claim (``None`` when the sidecar is missing).

    A missing sidecar means either the claim predates the lease protocol
    or the claimant sits in the short window between the claim move and
    the sidecar write; callers fall back to :func:`default_lease_s` and
    an unknown owner.
    """
    return resolve_store(store).read_lease(claimed_path)


def claim_next_task(root: str, *, owner: Optional[str] = None,
                    lease_s: Optional[float] = None,
                    store: StoreLike = None) -> Optional[str]:
    """Atomically claim a lease on the lowest-numbered pending task.

    Returns the claimed key (now under ``claims/``), or ``None`` when no
    pending task exists.  Losing a move race to another worker is normal
    — the loser just moves on to the next task.  The winner's lease
    record carries the **absolute deadline** (now + ``lease_s``) and
    names ``owner`` so operators can see who holds what.
    """
    backend = resolve_store(store)
    if lease_s is None:
        lease_s = default_lease_s()
    tasks_dir = os.path.join(root, _TASKS_DIR)
    for filename in sorted(backend.list_dir(tasks_dir)):
        if not filename.endswith(".pkl"):
            continue
        source = os.path.join(tasks_dir, filename)
        target = os.path.join(root, _CLAIMS_DIR, filename)
        if not backend.move(source, target):
            continue  # another worker won the claim
        backend.write_lease(target, {
            "owner": owner or default_owner(),
            "lease_s": float(lease_s),
            "deadline": time.time() + float(lease_s),
        })
        return target
    return None


@dataclass(frozen=True)
class BatchClaim:
    """A worker's hold on one or more tasks under a single lease.

    ``members`` are the claimed task keys (under ``claims/``), in the
    order they will execute.  For a classic single-task claim
    (``tasks_per_claim=1``) ``marker`` is ``None`` and the lease lives on
    the member's own sidecar — byte-identical to the PR-4/5 protocol.
    For a real batch the lease lives on one ``claims/batch-<hex>.pkl``
    marker whose record carries the member list (``"batch"``), so a
    whole batch costs one sidecar write plus one heartbeat stream no
    matter how many tasks ride it.

    ``payloads`` (aligned with ``members``) are the task bytes the claim
    moves already read — object-store moves copy the payload anyway, so
    batched claims prefetch it and the runner skips one read per member.
    """

    members: Tuple[str, ...]
    owner: str
    lease_s: float
    marker: Optional[str] = None
    payloads: Optional[Tuple[bytes, ...]] = None


def claim_tasks(root: str, n: int, *, owner: Optional[str] = None,
                lease_s: Optional[float] = None,
                store: StoreLike = None) -> Optional[BatchClaim]:
    """Atomically claim up to ``n`` pending tasks under one lease.

    ``n <= 1`` delegates to :func:`claim_next_task` — the classic
    protocol, unchanged on the wire.  Otherwise the lowest-numbered
    pending tasks are moved into ``claims/`` one by one (each move wins
    or loses independently; losses just shrink the batch) and a single
    batch marker + lease record is published covering all of them.
    Member claims carry **no** individual sidecars — the reaper resolves
    them through the batch record (see
    :func:`repro.runtime.janitor.reap_layout`).  Returns ``None`` when
    no pending task could be claimed.
    """
    backend = resolve_store(store)
    owner = owner or default_owner()
    if lease_s is None:
        lease_s = default_lease_s()
    if n <= 1:
        claimed = claim_next_task(root, owner=owner, lease_s=lease_s,
                                  store=backend)
        if claimed is None:
            return None
        return BatchClaim(members=(claimed,), owner=owner,
                          lease_s=float(lease_s))
    tasks_dir = os.path.join(root, _TASKS_DIR)
    claims_dir = os.path.join(root, _CLAIMS_DIR)
    members: List[str] = []
    payloads: List[bytes] = []
    for filename in sorted(backend.list_dir(tasks_dir)):
        if not filename.endswith(".pkl"):
            continue
        target = os.path.join(claims_dir, filename)
        data = backend.move_read(os.path.join(tasks_dir, filename), target)
        if data is None:
            continue  # another worker won this member
        members.append(target)
        payloads.append(data)
        if len(members) >= n:
            break
    if not members:
        return None
    basenames = [os.path.basename(path) for path in members]
    marker = os.path.join(claims_dir,
                          _BATCH_PREFIX + uuid.uuid4().hex + ".pkl")
    backend.put(marker, _dumps(basenames))
    backend.write_lease(marker, {
        "owner": owner,
        "lease_s": float(lease_s),
        "deadline": time.time() + float(lease_s),
        "batch": basenames,
    })
    return BatchClaim(members=tuple(members), owner=owner,
                      lease_s=float(lease_s), marker=marker,
                      payloads=tuple(payloads))


def heartbeat(claimed_path: str, *, store: StoreLike = None) -> bool:
    """Renew a claim's lease deadline; False when the claim is gone."""
    return resolve_store(store).renew_lease(
        claimed_path, default_lease_s=default_lease_s()
    )


class _LeaseHeartbeat:
    """Background thread renewing one claim's lease while its task runs.

    Rewrites the lease record's absolute deadline every quarter lease so
    a live worker never loses its claim to the reaper, no matter how
    long the task takes; stops silently if the claim disappears (the
    task finished, or an aggressive reaper re-queued it — the latter is
    benign because tasks are pure and results idempotent).  ``lost``
    records that the lease vanished mid-run, so a batch runner knows to
    stop deleting member claims that now belong to the reaper.
    """

    def __init__(self, claimed_path: str, lease_s: float,
                 store: QueueStore) -> None:
        self._claimed_path = claimed_path
        self._lease_s = lease_s
        self._store = store
        self._interval_s = max(lease_s / 4.0, 0.01)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.lost = False

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _beat(self) -> None:
        from repro.runtime import resilience

        while not self._stop.wait(self._interval_s):
            try:
                renewed = self._store.renew_lease(
                    self._claimed_path, default_lease_s=self._lease_s
                )
            except Exception as error:
                # a transient storage fault must not kill the heartbeat:
                # the lease survives a missed beat (deadline = last
                # renewal + lease), so just try again next interval.
                # Anything deterministic is a real bug — surface it.
                if resilience.classify_outage(error) != resilience.TRANSIENT:
                    raise
                continue
            if not renewed:
                self.lost = True
                break


def run_claimed_task(root: str, claimed_path: str, *,
                     store: StoreLike = None) -> Optional[int]:
    """Execute one claimed task and publish its result.

    The claim's lease is renewed by a background heartbeat for as long as
    the task runs.  Worker exceptions are published as ``ok=False``
    results (with the traceback as payload) so the submitting executor
    re-raises them instead of waiting forever.  Returns the task index,
    or ``None`` when the claim vanished before it could be read (lost to
    a racing janitor in the claim/sidecar write gap — rare and benign,
    the task is executed by whoever holds it now).

    If the lease was lost mid-task (claim re-queued by a reaper after a
    missed heartbeat) the result is still published — it is byte-identical
    to whatever the re-execution will produce — but the *current* holder's
    claim files are left alone.
    """
    backend = resolve_store(store)
    data = backend.get(claimed_path)
    if data is None:
        return None
    index, fn, arg = pickle.loads(data)
    lease = backend.read_lease(claimed_path) or {}
    owner = lease.get("owner")
    lease_s = float(lease.get("lease_s") or default_lease_s())
    if fn is None:
        fn = _load_shared_fn(root, backend)
    with _LeaseHeartbeat(claimed_path, lease_s, backend):
        try:
            payload: object = fn(arg)
            ok = True
        except Exception:  # noqa: BLE001 - workers must never die silently
            payload = traceback.format_exc()
            ok = False
    _atomic_write(root, _RESULTS_DIR, _task_filename(index),
                  (index, ok, payload), store=backend)
    _release_claim(claimed_path, owner, store=backend)
    return index


def run_claimed_batch(root: str, claim: BatchClaim, *,
                      store: StoreLike = None,
                      should_stop: Optional[Callable[[], bool]] = None
                      ) -> int:
    """Execute a batch claim's members in order; returns tasks executed.

    A ``marker``-less claim (``tasks_per_claim=1``) delegates to
    :func:`run_claimed_task` — the classic path, bit-identical.  A real
    batch runs under **one** heartbeat on the batch marker; each member
    publishes its result and releases its claim individually the moment
    it finishes, so a crash mid-batch re-queues only the unfinished
    members (the reaper sees their results missing) and a collector
    observes progress member by member, not batch by batch.

    ``should_stop`` is polled between members: the in-flight member
    finishes and publishes, the remaining members move back to
    ``tasks/`` *without* an attempt bump (a graceful drain is not a
    failure), and the batch lease is released.

    If the batch lease is lost mid-run (missed heartbeats; the reaper
    re-queued the batch) finished members still publish — results are
    idempotent — but member claims are left for their new holder.
    """
    backend = resolve_store(store)
    if claim.marker is None:
        index = run_claimed_task(root, claim.members[0], store=backend)
        return 0 if index is None else 1
    executed = 0
    remaining = list(claim.members)
    prefetched = list(claim.payloads) if claim.payloads is not None \
        else [None] * len(remaining)
    with _LeaseHeartbeat(claim.marker, claim.lease_s, backend) as beat:
        while remaining:
            if should_stop is not None and should_stop():
                if not beat.lost:
                    for claimed_path in remaining:
                        backend.move(
                            claimed_path,
                            os.path.join(root, _TASKS_DIR,
                                         os.path.basename(claimed_path)),
                        )
                break
            claimed_path = remaining.pop(0)
            data = prefetched.pop(0)
            if data is None:
                data = backend.get(claimed_path)
            if data is None:
                continue  # resolved by a racing reaper; theirs now
            index, fn, arg = pickle.loads(data)
            if fn is None:
                fn = _load_shared_fn(root, backend)
            try:
                payload: object = fn(arg)
                ok = True
            except Exception:  # noqa: BLE001 - workers must never die
                payload = traceback.format_exc()
                ok = False
            _atomic_write(root, _RESULTS_DIR, _task_filename(index),
                          (index, ok, payload), store=backend)
            if not beat.lost:
                backend.delete(claimed_path)
            executed += 1
    _release_claim(claim.marker, claim.owner, store=backend)
    return executed


def _release_claim(claimed_path: str, owner: Optional[str], *,
                   store: StoreLike = None) -> None:
    """Remove a finished claim + sidecar, unless another worker holds it.

    After a lease expiry the same claim key may belong to a different
    worker; deleting *their* claim would orphan their accounting, so the
    release is skipped unless the sidecar still names *our* owner — a
    missing sidecar counts as "not ours" too, because a new claimant sits
    in its claim/sidecar write gap exactly when its sidecar is absent.
    """
    backend = resolve_store(store)
    if owner is not None:
        current = backend.read_lease(claimed_path)
        if current is None or current.get("owner") != owner:
            return
    backend.delete(claimed_path)
    backend.delete(_lease_path(claimed_path))


def read_attempts(root: str, index: int, *, store: StoreLike = None) -> int:
    """How many times the reaper has re-queued task ``index`` (0 = never)."""
    data = resolve_store(store).get(
        os.path.join(root, _ATTEMPTS_DIR, _task_filename(index))
    )
    if data is None:
        return 0
    try:
        return int(data.decode("utf-8").strip() or 0)
    except (UnicodeDecodeError, ValueError):
        return 0


def record_attempt(root: str, index: int, attempts: int, *,
                   store: StoreLike = None) -> None:
    """Persist the re-queue count of task ``index`` (plain text, atomic)."""
    _atomic_write_text(root, _ATTEMPTS_DIR, _task_filename(index),
                       f"{attempts}\n", store=store)


def partition_namespace(root: str, index: int) -> str:
    """Path of sweep-partition namespace ``index`` under a sweep root."""
    return os.path.join(root, f"{PART_PREFIX}{index:04d}")


def _layout_roots(root: str, *, store: StoreLike = None) -> List[str]:
    """Queue layouts reachable under ``root``.

    The root itself counts when it carries a layout (callers driving the
    protocol functions directly), followed by every ``run-*`` namespace
    an executor created beneath it and every ``part-*`` sweep partition
    the sharded-sweep planner queued there — one worker pointed at a
    sweep root therefore drains all of its partitions.
    """
    return resolve_store(store).list_layouts(
        root, run_prefix=(_RUN_PREFIX, PART_PREFIX)
    )


def _serve_one(root: str, *, owner: Optional[str],
               lease_s: Optional[float], tasks_per_claim: int,
               max_n: Optional[int], store: QueueStore,
               should_stop: Optional[Callable[[], bool]] = None
               ) -> Tuple[Optional[str], int]:
    """Claim and run one batch of pending tasks from any layout.

    Returns ``(layout, executed)`` for the first layout that yielded
    work, or ``(None, 0)`` when every layout is drained.  ``max_n`` caps
    the batch below ``tasks_per_claim`` so a ``--max-tasks`` budget is
    never overshot.
    """
    n = tasks_per_claim if max_n is None else min(tasks_per_claim, max_n)
    for layout in _layout_roots(root, store=store):
        claim = claim_tasks(layout, n, owner=owner, lease_s=lease_s,
                            store=store)
        if claim is None:
            continue
        executed = run_claimed_batch(layout, claim, store=store,
                                     should_stop=should_stop)
        if executed:
            return layout, executed
        # every member vanished under us (or a drain request emptied the
        # batch before work started); try another layout
    return None, 0


def serve(root: str, *, max_tasks: Optional[int] = None,
          owner: Optional[str] = None, lease_s: Optional[float] = None,
          should_stop: Optional[Callable[[], bool]] = None,
          compact_threshold: Optional[int] = None,
          tasks_per_claim: Optional[int] = None,
          store: StoreLike = None) -> int:
    """Drain the queue: claim and run tasks until none remain.

    This is the worker loop ``python -m repro.runtime.queue <root> serve``
    runs; the executor also calls it inline for single-host operation.
    Tasks are drained from the root's own layout and from every ``run-*``
    namespace under it, each under a heartbeat-renewed lease.  Returns
    the number of tasks executed.

    Parameters
    ----------
    max_tasks:
        Stop after this many tasks (``None`` drains until empty).
    owner, lease_s:
        Lease identity and length of this worker's claims (defaults:
        :func:`default_owner`, :func:`default_lease_s`).
    should_stop:
        Polled between tasks; returning true stops the loop after the
        in-flight task — the graceful-drain hook the CLI wires to SIGTERM.
    compact_threshold:
        When set and positive, every ``compact_threshold`` tasks served
        from a layout triggers opportunistic result compaction there
        (``None`` resolves :func:`default_compact_threshold`).
    tasks_per_claim:
        Tasks claimed under one lease per claim round-trip (``None``
        resolves :func:`default_tasks_per_claim` / 1, the classic
        protocol).  Batches amortise the claim/lease/release overhead;
        crash recovery stays per-member (see :func:`run_claimed_batch`).
    store:
        Queue-storage backend (name, instance, or ``None`` for the
        ``REPRO_RUNTIME_STORE`` toggle / directory default).
    """
    backend = resolve_store(store)
    if compact_threshold is None:
        compact_threshold = default_compact_threshold()
    if tasks_per_claim is None:
        tasks_per_claim = default_tasks_per_claim()
    if tasks_per_claim < 1:
        raise ValueError(f"tasks_per_claim must be >= 1, got "
                         f"{tasks_per_claim}")
    executed = 0
    served_per_layout: Dict[str, int] = {}
    while max_tasks is None or executed < max_tasks:
        if should_stop is not None and should_stop():
            break
        remaining = None if max_tasks is None else max_tasks - executed
        layout, ran = _serve_one(root, owner=owner, lease_s=lease_s,
                                 tasks_per_claim=tasks_per_claim,
                                 max_n=remaining, store=backend,
                                 should_stop=should_stop)
        if layout is None:
            break
        before = served_per_layout.get(layout, 0)
        executed += ran
        served_per_layout[layout] = before + ran
        # a batch can cross (or jump past) the threshold mid-claim, so
        # compact on boundary *crossings*, not exact multiples
        if compact_threshold and \
                (before + ran) // compact_threshold > \
                before // compact_threshold:
            from repro.runtime import janitor

            janitor.compact_layout(layout, chunk_size=compact_threshold,
                                   store=backend)
    return executed


def _read_result_entries(root: str, *, store: StoreLike = None
                         ) -> Dict[int, Tuple[bool, object]]:
    """All published results of a layout, keyed by task index.

    Reads loose per-task files and compacted bundles alike.  Duplicate
    indices (a bundle overlapping a not-yet-deleted loose file, or a
    re-executed task) collapse by key — the payloads are byte-identical
    by the determinism contract.  Objects that vanish between the listing
    and the read were just compacted; the next poll sees their bundle.
    """
    backend = resolve_store(store)
    results_dir = os.path.join(root, _RESULTS_DIR)
    entries: Dict[int, Tuple[bool, object]] = {}
    for name in sorted(backend.list_dir(results_dir)):
        if not name.endswith(".pkl"):
            continue
        data = backend.get(os.path.join(results_dir, name))
        if data is None:
            continue  # compacted away between listing and read
        payload = pickle.loads(data)
        if name.startswith(_BUNDLE_PREFIX):
            for index, ok, value in payload:
                entries[index] = (ok, value)
        else:
            index, ok, value = payload
            entries[index] = (ok, value)
    return entries


def published_indices(root: str,
                      bundle_cache: Optional[Dict[str, frozenset]] = None,
                      *, store: StoreLike = None) -> set:
    """Indices of every published result, *without* reading payloads.

    Loose result files carry their index in the filename; bundles are
    opened once to list their indices — and, being immutable and uniquely
    named, that set can be memoised in ``bundle_cache`` across the poll
    cycles of one collection, keeping the poll loop O(new bundles) instead
    of re-deserialising every payload each cycle.
    """
    backend = resolve_store(store)
    results_dir = os.path.join(root, _RESULTS_DIR)
    indices: set = set()
    for name in backend.list_dir(results_dir):
        if not name.endswith(".pkl"):
            continue
        if not name.startswith(_BUNDLE_PREFIX):
            try:
                indices.add(_task_index(name))
            except ValueError:
                pass  # foreign object in results/; ignore
            continue
        cached = None if bundle_cache is None else bundle_cache.get(name)
        if cached is None:
            data = backend.get(os.path.join(results_dir, name))
            if data is None:
                continue
            cached = frozenset(
                index for index, _, _ in pickle.loads(data)
            )
            if bundle_cache is not None:
                bundle_cache[name] = cached
        indices |= cached
    return indices


def collect_results(root: str, expected: int, *, timeout_s: float,
                    poll_interval_s: float,
                    max_retries: Optional[int] = None,
                    reap_orphans: bool = True,
                    compact_threshold: Optional[int] = None,
                    maintenance_interval_s: Optional[float] = None,
                    inline_worker: Optional[Callable[[], object]] = None,
                    autoscale_hook: Optional[
                        Callable[[Dict[str, object]], None]] = None,
                    store: StoreLike = None) -> List[object]:
    """Gather all ``expected`` results, polling until present or timeout.

    Each poll cycle runs ``inline_worker`` when given — the executor's
    hook for draining its own queue in-process.  On a coarser
    **maintenance cadence** (``maintenance_interval_s``; defaults to ten
    poll intervals, at least 1 s — lease expiry is measured in tens of
    seconds, so reaping at poll frequency would only hammer the shared
    storage) the collector also (1) **reaps** the layout: expired
    leases are re-queued (or quarantined after ``max_retries`` re-queues)
    so one dead worker can never stall the run forever, (2) compacts
    loose results once they outnumber ``compact_threshold``, and (3)
    feeds the current autoscaling advisory to ``autoscale_hook`` when one
    is registered — the executor's seam for driving external worker
    scalers.  Polling counts result *indices* (names plus memoised bundle
    listings) so a huge grid is not re-deserialised every cycle; payloads
    are read exactly once, from loose files and bundles alike, and
    reassembled in submission order.  The first ``ok=False`` payload
    (worker traceback or poisoned-task quarantine notice) is re-raised
    as ``RuntimeError``.
    """
    backend = resolve_store(store)
    if max_retries is None:
        max_retries = default_max_retries()
    if compact_threshold is None:
        compact_threshold = default_compact_threshold()
    if maintenance_interval_s is None:
        maintenance_interval_s = max(1.0, 10.0 * poll_interval_s)
    from repro.runtime import janitor, resilience

    deadline = time.monotonic() + timeout_s
    bundle_cache: Dict[str, frozenset] = {}
    present: frozenset = frozenset()
    next_maintenance = time.monotonic()  # first cycle maintains immediately
    while True:
        if inline_worker is not None:
            inline_worker()
        if time.monotonic() >= next_maintenance:
            try:
                if reap_orphans:
                    janitor.reap_layout(root, max_retries=max_retries,
                                        store=backend)
                if compact_threshold:
                    janitor.compact_layout(root,
                                           chunk_size=compact_threshold,
                                           store=backend)
                if autoscale_hook is not None:
                    autoscale_hook(janitor.autoscale_advisory(root,
                                                              store=backend))
            except Exception as error:
                # maintenance is best-effort on a cadence: a transient
                # storage fault (conflict storm, injected outage) just
                # skips this round — the next cycle retries.  A
                # deterministic error is a real bug and must surface.
                if resilience.classify_outage(error) != resilience.TRANSIENT:
                    raise
            next_maintenance = time.monotonic() + maintenance_interval_s
        try:
            present = published_indices(root, bundle_cache, store=backend)
            if len(present) >= expected:
                entries = _read_result_entries(root, store=backend)
                if len(entries) >= expected:
                    break
        except Exception as error:
            # a transient storage fault mid-scan costs one poll cycle,
            # nothing more — results are immutable once published, so
            # re-scanning next cycle observes a superset
            if resilience.classify_outage(error) != resilience.TRANSIENT:
                raise
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"queue at {root!r} produced {len(present)} of {expected} "
                f"results within {timeout_s:.1f}s; are workers running? "
                f"(`python -m repro.runtime.queue {root} status` shows the "
                f"queue state)"
            )
        time.sleep(poll_interval_s)
    failures = sorted(
        (index, payload) for index, (ok, payload) in entries.items() if not ok
    )
    if failures:
        index, payload = failures[0]
        raise RuntimeError(
            f"queue task {index} failed on a worker:\n{payload}"
        )
    return gather(
        ((index, payload) for index, (_, payload) in entries.items()),
        expected,
    )


class QueueExecutor(Executor):
    """Executor speaking the work-queue protocol over a pluggable store.

    Parameters
    ----------
    root:
        Shared queue directory.  ``None`` (the default) creates a private
        temporary queue per :meth:`execute` call — the single-host mode.
        When the runtime registry builds this backend
        (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``) the root
        defaults from the :data:`QUEUE_DIR_ENV` environment variable, so
        multi-host execution is reachable without constructing the
        executor by hand.
    inline_worker:
        When true (default) the executor also drains the queue in-process
        while collecting, so it works with zero external setup — and
        *cooperates* with any external workers pointed at ``root`` (each
        task is claimed exactly once, whoever gets it first), including
        re-executing tasks the reaper recovered from a dead worker.  Set
        false for a pure coordinator that only enqueues, reaps and polls;
        that mode requires an explicit shared ``root`` — with a private
        temp dir no external worker could ever find the tasks and every
        run would just time out.
    workers:
        Accepted for registry compatibility; the inline worker is always a
        single loop (parallelism comes from running external workers).
    timeout_s, poll_interval_s:
        Result-polling knobs for the external-worker mode.
    lease_s:
        Lease length of claims made by the inline worker, and implicitly
        the recovery latency after a worker dies (its orphaned claim is
        re-queued one lease length after its last heartbeat).  ``None``
        resolves ``REPRO_RUNTIME_LEASE_S`` / the 30 s default.
    max_retries:
        Lease-expiry re-queues per task before the reaper quarantines it
        under ``failed/`` and fails the run (``None`` resolves
        ``REPRO_RUNTIME_MAX_RETRIES`` / 3).
    compact_threshold:
        Loose result files that trigger compaction into bundles, and the
        bundle size; ``0`` disables auto-compaction (``None`` resolves
        ``REPRO_RUNTIME_COMPACT_THRESHOLD`` / 512).
    tasks_per_claim:
        Tasks the inline worker claims under one batched lease per
        round-trip (``None`` resolves ``REPRO_RUNTIME_TASKS_PER_CLAIM``
        / 1).  Raising it amortises the claim/lease/release protocol
        overhead per task; a crashed worker re-queues the whole
        unfinished remainder of its batch, so recovery granularity
        coarsens with it (see ``docs/runtime.md``).
    store:
        Queue-storage backend: a name (``"dir"`` / ``"object"``), a
        :class:`~repro.runtime.store.QueueStore` instance, or ``None``
        to resolve the ``REPRO_RUNTIME_STORE`` toggle (default: the
        directory backend).  Workers pointed at the same root must speak
        the same store.
    autoscale_hook:
        Optional callable fed the machine-readable autoscaling advisory
        (see :func:`repro.runtime.janitor.autoscale_advisory`) on every
        maintenance cycle while the executor collects — the seam for
        wiring the fleet to an external worker scaler.
    """

    name = "queue"

    def __init__(self, root: Optional[str] = None, *,
                 inline_worker: bool = True, workers: int = 1,
                 timeout_s: float = 300.0,
                 poll_interval_s: float = 0.05,
                 lease_s: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 compact_threshold: Optional[int] = None,
                 tasks_per_claim: Optional[int] = None,
                 store: StoreLike = None,
                 autoscale_hook: Optional[
                     Callable[[Dict[str, object]], None]] = None) -> None:
        if timeout_s <= 0 or poll_interval_s <= 0:
            raise ValueError("timeout_s and poll_interval_s must be positive")
        if root is None and not inline_worker:
            raise ValueError(
                "inline_worker=False needs an explicit shared root: on a "
                "private temp queue no external worker could ever see the "
                "tasks, so every execute() would only time out"
            )
        self.root = root
        self.inline_worker = bool(inline_worker)
        self.workers = int(workers)
        self.timeout_s = float(timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.lease_s = default_lease_s() if lease_s is None else float(lease_s)
        self.max_retries = (default_max_retries() if max_retries is None
                            else int(max_retries))
        self.compact_threshold = (
            default_compact_threshold() if compact_threshold is None
            else int(compact_threshold)
        )
        self.tasks_per_claim = (
            default_tasks_per_claim() if tasks_per_claim is None
            else int(tasks_per_claim)
        )
        self.store = resolve_store(store)
        self.autoscale_hook = autoscale_hook
        if self.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.compact_threshold < 0:
            raise ValueError("compact_threshold must be >= 0 (0 disables)")
        if self.tasks_per_claim < 1:
            raise ValueError("tasks_per_claim must be >= 1")

    def _queue_root(self) -> Tuple[str, bool]:
        if self.root is not None:
            return self.root, False
        return self.store.create_ephemeral_root(), True

    def execute(self, worklist: WorkList) -> List[object]:
        if not worklist:
            return []
        root, ephemeral = self._queue_root()
        # a private namespace per run: re-running over a shared root (or
        # two executors sharing it concurrently) must never see another
        # run's task/result files — stale results would otherwise satisfy
        # this run's poll
        run_root = os.path.join(root, _RUN_PREFIX + uuid.uuid4().hex)
        init_queue_dirs(run_root, store=self.store)
        try:
            shared = len({id(task.fn) for task in worklist}) == 1
            if shared:
                write_shared_fn(run_root, worklist.tasks[0].fn,
                                store=self.store)
            for task in worklist:
                enqueue_task(run_root, task, shared_fn=shared,
                             store=self.store)
            serve_inline = None
            if self.inline_worker:
                owner = default_owner()

                def serve_inline() -> int:
                    # drains fresh *and* reaper-re-queued tasks each poll
                    return serve(run_root, owner=owner, lease_s=self.lease_s,
                                 compact_threshold=self.compact_threshold,
                                 tasks_per_claim=self.tasks_per_claim,
                                 store=self.store)

            results = collect_results(
                run_root, len(worklist), timeout_s=self.timeout_s,
                poll_interval_s=self.poll_interval_s,
                max_retries=self.max_retries,
                compact_threshold=self.compact_threshold,
                # reap on the lease scale: recovery latency stays a
                # fraction of the lease without per-poll claim scans
                maintenance_interval_s=max(self.poll_interval_s,
                                           self.lease_s / 4.0),
                inline_worker=serve_inline,
                autoscale_hook=self.autoscale_hook,
                store=self.store,
            )
        finally:
            if ephemeral:
                self.store.remove_tree(root)
        # success: retire the namespace (failed runs keep theirs so the
        # published error payloads stay inspectable)
        if not ephemeral:
            self.store.remove_tree(run_root)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QueueExecutor(root={self.root!r}, "
                f"inline_worker={self.inline_worker}, "
                f"lease_s={self.lease_s}, max_retries={self.max_retries}, "
                f"compact_threshold={self.compact_threshold}, "
                f"tasks_per_claim={self.tasks_per_claim}, "
                f"store={self.store.name!r})")


def _serve_command(args: argparse.Namespace) -> int:
    """Worker loop with graceful SIGTERM drain."""
    stop = threading.Event()

    def _drain(signum, frame):  # pragma: no cover - exercised via subprocess
        stop.set()

    # graceful drain: finish (and publish) the in-flight task, then exit
    # instead of abandoning a claim the reaper would have to recover
    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        pass  # not the main thread (tests driving main() directly)
    owner = default_owner()
    total = 0
    try:
        while True:
            remaining = (None if args.max_tasks is None
                         else args.max_tasks - total)
            if remaining is not None and remaining <= 0:
                break
            total += serve(
                args.root, max_tasks=remaining, owner=owner,
                lease_s=args.lease_seconds, should_stop=stop.is_set,
                compact_threshold=args.compact_threshold,
                tasks_per_claim=args.tasks_per_claim,
                store=args.store,
            )
            if stop.is_set() or not args.watch:
                break
            if args.reap:
                from repro.runtime import janitor

                janitor.reap(args.root, max_retries=args.max_retries,
                             store=args.store)
            if stop.wait(args.poll_interval):
                break
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    drained = " (drained on SIGTERM)" if stop.is_set() else ""
    print(f"executed {total} task(s) from {args.root}{drained}")
    return 0


def _status_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    print(json.dumps(janitor.status(args.root, store=args.store),
                     indent=2, sort_keys=True))
    return 0


def _autoscale_command(args: argparse.Namespace) -> int:
    import sys

    from repro.runtime import janitor

    try:
        advisory = janitor.autoscale_advisory(
            args.root, tasks_per_worker=args.tasks_per_worker,
            min_workers=args.min_workers, max_workers=args.max_workers,
            hysteresis_tasks=args.hysteresis_tasks,
            store=args.store,
        )
    except ValueError as error:
        # invalid policy knobs are a usage error, not a crash — external
        # scalers parse this verb's output and deserve a clean failure
        print(f"autoscale: {error}", file=sys.stderr)
        return 2
    print(json.dumps(advisory, indent=2, sort_keys=True))
    return 0


def _reap_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    report = janitor.reap(args.root, max_retries=args.max_retries,
                          store=args.store)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def _compact_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    chunk = args.compact_threshold or DEFAULT_COMPACT_THRESHOLD
    bundles = janitor.compact(args.root, chunk_size=chunk, partial=True,
                              store=args.store)
    print(json.dumps({"bundles_written": bundles}, indent=2, sort_keys=True))
    return 0


def _supervise_command(args: argparse.Namespace) -> int:
    """Long-lived fleet supervisor: act on autoscale advisories.

    Polls :func:`repro.runtime.janitor.autoscale_advisory`, spawns and
    retires real ``serve --watch`` worker subprocesses with cooldown +
    hysteresis, restarts crashed workers under decorrelated-jitter
    backoff (benching crash-loopers), and emits a JSON event stream.
    Exits 0 after a SIGTERM/SIGINT drain — or on its own once the fleet
    has sat scaled-to-zero over an empty queue for
    ``--idle-exit-seconds`` (the bounded-demo/cron mode).
    """
    import sys

    from repro.runtime.resilience import BackoffPolicy
    from repro.runtime.supervisor import Supervisor, open_event_sink

    stop = threading.Event()

    def _halt(signum, frame):  # pragma: no cover - exercised via subprocess
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _halt)
        except ValueError:
            pass  # not the main thread (tests driving main() directly)

    handle = open_event_sink(args.events)

    def emit(event: Dict[str, object]) -> None:
        try:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()
        except (OSError, ValueError):
            pass  # a closed event sink must never kill the fleet

    restart_backoff = None
    if args.restart_base_seconds is not None:
        restart_backoff = BackoffPolicy(
            base_delay_s=args.restart_base_seconds,
            max_delay_s=max(args.restart_base_seconds,
                            args.restart_max_seconds),
        )
    supervisor = Supervisor(
        args.root,
        store=args.store_name,
        min_workers=args.min_workers,
        max_workers=(4 if args.max_workers is None else args.max_workers),
        tasks_per_worker=args.tasks_per_worker,
        hysteresis_tasks=args.hysteresis_tasks,
        poll_interval_s=args.poll_interval,
        cooldown_s=args.cooldown_seconds,
        lease_s=args.lease_seconds,
        max_restarts=args.max_restarts,
        restart_window_s=args.restart_window_seconds,
        restart_backoff=restart_backoff,
        seed=args.seed,
        emit=emit,
    )
    try:
        supervisor.run(stop=stop, idle_exit_s=args.idle_exit_seconds)
    finally:
        summary = supervisor.summary()
        print(f"supervisor drained: {json.dumps(summary, sort_keys=True)}",
              file=sys.stderr)
        if handle is not sys.stdout:
            handle.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


_COMMANDS = {
    "serve": _serve_command,
    "status": _status_command,
    "autoscale": _autoscale_command,
    "reap": _reap_command,
    "compact": _compact_command,
    "supervise": _supervise_command,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.runtime.queue <root> [serve|status|autoscale|supervise|compact|reap]``.

    ``serve`` (the default) is the worker loop — it drains every layout
    under the root, optionally forever (``--watch``), reaping orphans
    between sweeps and draining gracefully on SIGTERM.  ``status`` prints
    a machine-readable JSON summary (queued/claimed/done/failed counts
    plus queue-depth, claim-age and desired-worker autoscaling signals,
    per layout).  ``autoscale`` prints a machine-readable scale-up/down
    advisory for external worker scalers — and ``supervise`` *acts* on
    it: a long-lived daemon spawning/retiring real local worker
    subprocesses with cooldown + hysteresis, restarting crashed ones
    under jittered backoff (crash-loopers are benched), and emitting a
    JSON event stream.  ``reap`` re-queues expired leases and
    quarantines poisoned tasks once.  ``compact`` bundles loose result
    files (including a final partial bundle).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.queue",
        description="Operate a repro runtime work-queue directory.",
    )
    parser.add_argument("root", help="shared queue directory")
    parser.add_argument(
        "command", nargs="?", default="serve", choices=sorted(_COMMANDS),
        help="what to do (default: serve, the worker loop)",
    )
    parser.add_argument(
        "--store", default=None, choices=STORES,
        help=f"queue-storage backend (default: ${STORE_ENV} or 'dir')",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None,
        help="serve: stop after this many tasks (default: drain until empty)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="serve: keep polling for new tasks instead of exiting when empty",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="serve: seconds between polls in --watch mode",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=None,
        help=f"lease length of claims (default: ${LEASE_ENV} or "
             f"{DEFAULT_LEASE_S:g})",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help=f"reap: re-queues before quarantine (default: ${MAX_RETRIES_ENV} "
             f"or {DEFAULT_MAX_RETRIES})",
    )
    parser.add_argument(
        "--compact-threshold", type=int, default=None,
        help=f"loose results triggering compaction / bundle size (default: "
             f"${COMPACT_THRESHOLD_ENV} or {DEFAULT_COMPACT_THRESHOLD}; "
             f"0 disables)",
    )
    parser.add_argument(
        "--tasks-per-claim", type=int, default=None,
        help=f"serve: tasks claimed under one batched lease per round-trip "
             f"(default: ${TASKS_PER_CLAIM_ENV} or "
             f"{DEFAULT_TASKS_PER_CLAIM}; batches amortise queue protocol "
             f"overhead, a dead worker re-queues its whole unfinished batch)",
    )
    parser.add_argument(
        "--no-reap", dest="reap", action="store_false",
        help="serve --watch: do not reap orphaned claims between polls",
    )
    parser.add_argument(
        "--tasks-per-worker", type=int, default=None,
        help="autoscale/supervise: backlog tasks one worker is expected to "
             "absorb (default: 4)",
    )
    parser.add_argument(
        "--min-workers", type=int, default=0,
        help="autoscale/supervise: floor of the desired worker count "
             "(default: 0)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="autoscale/supervise: ceiling of the desired worker count "
             "(default: 32 for autoscale, 4 for supervise)",
    )
    parser.add_argument(
        "--hysteresis-tasks", type=int, default=None,
        help="autoscale/supervise: backlog margin below a scale-down "
             "boundary before shrinking (default: tasks-per-worker // 2)",
    )
    parser.add_argument(
        "--cooldown-seconds", type=float, default=5.0,
        help="supervise: minimum seconds between scaling actions "
             "(default: 5)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=3,
        help="supervise: crashes inside --restart-window-seconds before a "
             "worker slot is benched instead of respawned (default: 3)",
    )
    parser.add_argument(
        "--restart-window-seconds", type=float, default=60.0,
        help="supervise: sliding crash-loop window (default: 60)",
    )
    parser.add_argument(
        "--restart-base-seconds", type=float, default=None,
        help="supervise: base delay of the decorrelated-jitter restart "
             "backoff (default: 0.5)",
    )
    parser.add_argument(
        "--restart-max-seconds", type=float, default=15.0,
        help="supervise: ceiling of the restart backoff (default: 15)",
    )
    parser.add_argument(
        "--idle-exit-seconds", type=float, default=None,
        help="supervise: exit once the fleet has been scaled to zero over "
             "an empty queue this long (default: run until SIGTERM)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="supervise: append the JSON event stream here "
             "(default: stdout; '-' also means stdout)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="supervise: seed of the restart-jitter stream (default: 0)",
    )
    args = parser.parse_args(argv)
    if args.lease_seconds is None:
        args.lease_seconds = default_lease_s()
    if args.max_retries is None:
        args.max_retries = default_max_retries()
    if args.compact_threshold is None:
        args.compact_threshold = default_compact_threshold()
    if args.tasks_per_claim is None:
        args.tasks_per_claim = default_tasks_per_claim()
    # the supervisor exports the *name* to worker subprocess environments;
    # everything else wants the resolved instance
    args.store_name = args.store
    args.store = resolve_store(args.store)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
