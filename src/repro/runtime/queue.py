"""File/dir-based work queue: the seam for multi-host sweep execution.

The ROADMAP's "distributed sweep execution beyond one host" item needs a
transport that works over anything hosts can share — NFS, a synced scratch
directory, an object-store FUSE mount.  This module defines that protocol
and a :class:`QueueExecutor` backend speaking it.  The protocol is the
deliverable; the executor doubles as a working single-host reference
implementation (it serves its own queue inline by default), so the seam is
exercised by the test suite today and scales out by simply pointing extra
worker processes — on any host — at the same directory.

Protocol (all paths relative to one queue layout directory):

``tasks/task-NNNNNNN.pkl``
    One pending task: a pickle of ``(index, fn, arg)``.  Producers write
    the pickle to ``tmp/`` first and ``os.rename`` it into ``tasks/`` so a
    consumer can never observe a half-written file.  When every task of a
    run shares one callable, ``fn`` is ``None`` and the callable lives in
    a single ``fn.pkl`` at the layout root instead — a heavyweight
    callable (e.g. a chunk task holding a whole packed inference engine)
    is serialised once per run, not once per task.
``claims/task-NNNNNNN.pkl``
    A task a worker has claimed, moved atomically out of ``tasks/`` via
    ``os.rename`` — the rename either succeeds for exactly one worker or
    raises, which is what makes concurrent workers safe without locks.
``results/task-NNNNNNN.pkl``
    The finished task: a pickle of ``(index, ok, payload)`` where ``ok``
    is a bool and ``payload`` is the result or the formatted error.  Also
    written via ``tmp/`` + rename.

Every :meth:`QueueExecutor.execute` call creates its own
``run-<unique-id>/`` layout under the shared root, so repeated or
concurrent runs over one root can never observe each other's task or
result files (a stale ``results/`` dir would otherwise satisfy a new
run's result poll).  Successful runs remove their namespace; failed runs
leave it behind with the error payloads for debugging.

Workers are stateless loops over ``claim -> run -> publish`` across every
layout under the root (the root itself, when callers drive the protocol
functions directly, plus all ``run-*`` namespaces); run one with
``python -m repro.runtime.queue <root>`` on every host sharing the
directory.  Results are reassembled in submission order, so queue
execution stays bit-identical with the serial oracle.
"""

from __future__ import annotations

import argparse
import os
import pickle
import time
import traceback
import uuid
from typing import List, Optional, Tuple

from repro.runtime.executors import Executor
from repro.runtime.tasks import Task, WorkList, gather

_TASKS_DIR = "tasks"
_CLAIMS_DIR = "claims"
_RESULTS_DIR = "results"
_TMP_DIR = "tmp"

#: per-execute namespace directories created under a shared queue root
_RUN_PREFIX = "run-"

#: single shared task callable of one run (written when all tasks agree)
_SHARED_FN_FILE = "fn.pkl"

#: environment variable naming the shared queue root the registry backend
#: uses (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``); unset
#: selects the self-contained single-host mode on a private temp dir
QUEUE_DIR_ENV = "REPRO_RUNTIME_QUEUE_DIR"

#: per-process cache of the *current* run's unpickled shared callable,
#: keyed by fn.pkl path.  Bounded to one entry: a shared callable can be
#: as heavy as a whole packed inference engine, and a long-lived --watch
#: worker serves runs one after another (claims drain layouts in sorted
#: order), so caching more than the run being drained only leaks memory.
_SHARED_FN_CACHE: dict = {}


def _task_filename(index: int) -> str:
    return f"task-{index:07d}.pkl"


def init_queue_dirs(root: str) -> None:
    """Create the queue directory layout (idempotent)."""
    for sub in (_TASKS_DIR, _CLAIMS_DIR, _RESULTS_DIR, _TMP_DIR):
        os.makedirs(os.path.join(root, sub), exist_ok=True)


def _atomic_write(root: str, subdir: str, filename: str,
                  payload: object) -> None:
    """Publish ``payload`` under ``root/subdir/filename`` via tmp + rename."""
    tmp_path = os.path.join(root, _TMP_DIR, f"{filename}.{uuid.uuid4().hex}")
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, os.path.join(root, subdir, filename))


def write_shared_fn(root: str, fn) -> None:
    """Publish the run's single shared task callable (``fn.pkl``)."""
    _atomic_write(root, "", _SHARED_FN_FILE, fn)


def _load_shared_fn(root: str):
    path = os.path.join(root, _SHARED_FN_FILE)
    key = os.path.abspath(path)
    cached = _SHARED_FN_CACHE.get(key)
    if cached is None:
        with open(path, "rb") as handle:
            cached = pickle.load(handle)
        _SHARED_FN_CACHE.clear()
        _SHARED_FN_CACHE[key] = cached
    return cached


def enqueue_task(root: str, task: Task, *, shared_fn: bool = False) -> None:
    """Publish one pending task into the queue.

    With ``shared_fn`` the task file carries ``None`` in the callable slot
    and workers resolve it from the layout's ``fn.pkl`` (which the
    producer must have published via :func:`write_shared_fn` first).
    """
    _atomic_write(root, _TASKS_DIR, _task_filename(task.index),
                  (task.index, None if shared_fn else task.fn, task.arg))


def claim_next_task(root: str) -> Optional[str]:
    """Atomically claim the lowest-numbered pending task.

    Returns the claimed file's path (now under ``claims/``), or ``None``
    when no pending task exists.  Losing a rename race to another worker is
    normal — the loser just moves on to the next file.
    """
    tasks_dir = os.path.join(root, _TASKS_DIR)
    for filename in sorted(os.listdir(tasks_dir)):
        if not filename.endswith(".pkl"):
            continue
        source = os.path.join(tasks_dir, filename)
        target = os.path.join(root, _CLAIMS_DIR, filename)
        try:
            os.rename(source, target)
        except OSError:
            continue  # another worker won the claim
        return target
    return None


def run_claimed_task(root: str, claimed_path: str) -> int:
    """Execute one claimed task file and publish its result.

    Worker exceptions are published as ``ok=False`` results (with the
    traceback as payload) so the submitting executor re-raises them instead
    of waiting forever.  Returns the task index.
    """
    with open(claimed_path, "rb") as handle:
        index, fn, arg = pickle.load(handle)
    if fn is None:
        fn = _load_shared_fn(root)
    try:
        payload: object = fn(arg)
        ok = True
    except Exception:  # noqa: BLE001 - workers must never die silently
        payload = traceback.format_exc()
        ok = False
    _atomic_write(root, _RESULTS_DIR, _task_filename(index),
                  (index, ok, payload))
    os.remove(claimed_path)
    return index


def _layout_roots(root: str) -> List[str]:
    """Queue layouts reachable under ``root``.

    The root itself counts when it carries a ``tasks/`` dir (callers
    driving the protocol functions directly), followed by every
    ``run-*`` namespace an executor created beneath it.
    """
    roots: List[str] = []
    if os.path.isdir(os.path.join(root, _TASKS_DIR)):
        roots.append(root)
    try:
        children = sorted(os.listdir(root))
    except OSError:
        children = []
    for name in children:
        if name.startswith(_RUN_PREFIX):
            candidate = os.path.join(root, name)
            if os.path.isdir(os.path.join(candidate, _TASKS_DIR)):
                roots.append(candidate)
    return roots


def _serve_one(root: str) -> bool:
    """Claim and run one pending task from any layout under ``root``."""
    for layout in _layout_roots(root):
        claimed = claim_next_task(layout)
        if claimed is not None:
            run_claimed_task(layout, claimed)
            return True
    return False


def serve(root: str, *, max_tasks: Optional[int] = None) -> int:
    """Drain the queue: claim and run tasks until none remain.

    This is the worker loop ``python -m repro.runtime.queue`` runs; the
    executor also calls it inline for single-host operation.  Tasks are
    drained from the root's own layout and from every ``run-*`` namespace
    under it.  Returns the number of tasks executed.
    """
    executed = 0
    while max_tasks is None or executed < max_tasks:
        if not _serve_one(root):
            break
        executed += 1
    return executed


def collect_results(root: str, expected: int, *, timeout_s: float,
                    poll_interval_s: float) -> List[object]:
    """Gather all ``expected`` results, polling until present or timeout."""
    results_dir = os.path.join(root, _RESULTS_DIR)
    deadline = time.monotonic() + timeout_s
    while True:
        present = [f for f in os.listdir(results_dir) if f.endswith(".pkl")]
        if len(present) >= expected:
            break
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"queue at {root!r} produced {len(present)} of {expected} "
                f"results within {timeout_s:.1f}s; are workers running?"
            )
        time.sleep(poll_interval_s)
    indexed: List[Tuple[int, object]] = []
    failures: List[Tuple[int, object]] = []
    for filename in sorted(present):
        with open(os.path.join(results_dir, filename), "rb") as handle:
            index, ok, payload = pickle.load(handle)
        if ok:
            indexed.append((index, payload))
        else:
            failures.append((index, payload))
    if failures:
        index, payload = failures[0]
        raise RuntimeError(
            f"queue task {index} failed on a worker:\n{payload}"
        )
    return gather(indexed, expected)


class QueueExecutor(Executor):
    """Executor speaking the file/dir work-queue protocol.

    Parameters
    ----------
    root:
        Shared queue directory.  ``None`` (the default) creates a private
        temporary queue per :meth:`execute` call — the single-host mode.
        When the runtime registry builds this backend
        (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``) the root
        defaults from the :data:`QUEUE_DIR_ENV` environment variable, so
        multi-host execution is reachable without constructing the
        executor by hand.
    inline_worker:
        When true (default) the executor also drains the queue in-process
        after enqueueing, so it works with zero external setup — and
        *cooperates* with any external workers pointed at ``root`` (each
        task is claimed exactly once, whoever gets it first).  Set false
        for a pure coordinator that only enqueues and polls; that mode
        requires an explicit shared ``root`` — with a private temp dir no
        external worker could ever find the tasks and every run would
        just time out.
    workers:
        Accepted for registry compatibility; the inline worker is always a
        single loop (parallelism comes from running external workers).
    timeout_s, poll_interval_s:
        Result-polling knobs for the external-worker mode.
    """

    name = "queue"

    def __init__(self, root: Optional[str] = None, *,
                 inline_worker: bool = True, workers: int = 1,
                 timeout_s: float = 300.0,
                 poll_interval_s: float = 0.05) -> None:
        if timeout_s <= 0 or poll_interval_s <= 0:
            raise ValueError("timeout_s and poll_interval_s must be positive")
        if root is None and not inline_worker:
            raise ValueError(
                "inline_worker=False needs an explicit shared root: on a "
                "private temp queue no external worker could ever see the "
                "tasks, so every execute() would only time out"
            )
        self.root = root
        self.inline_worker = bool(inline_worker)
        self.workers = int(workers)
        self.timeout_s = float(timeout_s)
        self.poll_interval_s = float(poll_interval_s)

    def _queue_root(self) -> Tuple[str, bool]:
        if self.root is not None:
            return self.root, False
        import tempfile

        return tempfile.mkdtemp(prefix="repro-queue-"), True

    def execute(self, worklist: WorkList) -> List[object]:
        if not worklist:
            return []
        root, ephemeral = self._queue_root()
        # a private namespace per run: re-running over a shared root (or
        # two executors sharing it concurrently) must never see another
        # run's task/result files — stale results would otherwise satisfy
        # this run's poll
        run_root = os.path.join(root, _RUN_PREFIX + uuid.uuid4().hex)
        init_queue_dirs(run_root)
        try:
            shared = len({id(task.fn) for task in worklist}) == 1
            if shared:
                write_shared_fn(run_root, worklist.tasks[0].fn)
            for task in worklist:
                enqueue_task(run_root, task, shared_fn=shared)
            if self.inline_worker:
                serve(run_root, max_tasks=len(worklist))
            results = collect_results(
                run_root, len(worklist), timeout_s=self.timeout_s,
                poll_interval_s=self.poll_interval_s,
            )
        finally:
            if ephemeral:
                import shutil

                shutil.rmtree(root, ignore_errors=True)
        # success: retire the namespace (failed runs keep theirs so the
        # published error payloads stay inspectable)
        if not ephemeral:
            import shutil

            shutil.rmtree(run_root, ignore_errors=True)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QueueExecutor(root={self.root!r}, "
                f"inline_worker={self.inline_worker})")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI worker loop: ``python -m repro.runtime.queue <queue-root>``."""
    parser = argparse.ArgumentParser(
        description="Drain a repro runtime work-queue directory."
    )
    parser.add_argument("root", help="shared queue directory")
    parser.add_argument(
        "--max-tasks", type=int, default=None,
        help="stop after this many tasks (default: drain until empty)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="keep polling for new tasks instead of exiting when empty",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between polls in --watch mode",
    )
    args = parser.parse_args(argv)
    total = 0
    while True:
        remaining = None if args.max_tasks is None else args.max_tasks - total
        if remaining is not None and remaining <= 0:
            break
        total += serve(args.root, max_tasks=remaining)
        if not args.watch:
            break
        time.sleep(args.poll_interval)
    print(f"executed {total} task(s) from {args.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
