"""File/dir-based work queue: the fleet-grade seam for multi-host sweeps.

The ROADMAP's "distributed sweep execution beyond one host" item needs a
transport that works over anything hosts can share — NFS, a synced scratch
directory, an object-store FUSE mount.  This module defines that protocol
and a :class:`QueueExecutor` backend speaking it.  The protocol is the
deliverable; the executor doubles as a working single-host reference
implementation (it serves its own queue inline by default), so the seam is
exercised by the test suite today and scales out by simply pointing extra
worker processes — on any host — at the same directory.

Protocol (all paths relative to one queue layout directory):

``tasks/task-NNNNNNN.pkl``
    One pending task: a pickle of ``(index, fn, arg)``.  Producers write
    the pickle to ``tmp/`` first and ``os.rename`` it into ``tasks/`` so a
    consumer can never observe a half-written file.  When every task of a
    run shares one callable, ``fn`` is ``None`` and the callable lives in
    a single ``fn.pkl`` at the layout root instead — a heavyweight
    callable (e.g. a chunk task holding a whole packed inference engine)
    is serialised once per run, not once per task.
``claims/task-NNNNNNN.pkl``
    A task a worker holds a **lease** on, moved atomically out of
    ``tasks/`` via ``os.rename`` — the rename either succeeds for exactly
    one worker or raises, which is what makes concurrent workers safe
    without locks.  The lease deadline is the claim file's mtime plus the
    lease length; workers renew it with cheap mtime-bump **heartbeats**
    while the task runs, so a live worker can hold a task indefinitely
    while a dead worker's claim expires one lease length after its last
    heartbeat.
``claims/task-NNNNNNN.pkl.lease``
    Lease metadata sidecar: a pickle of ``{"owner", "lease_s"}`` naming
    the worker (``host:pid``) and its lease length.  Written right after
    the claim rename; the reaper falls back to the default lease length
    when it is missing (the claim/sidecar race window is microseconds).
``results/task-NNNNNNN.pkl``
    The finished task: a pickle of ``(index, ok, payload)`` where ``ok``
    is a bool and ``payload`` is the result or the formatted error.  Also
    written via ``tmp/`` + rename.
``results/bundle-NNNNNNN-<hex>.pkl``
    A compacted **result bundle**: a pickle of a list of ``(index, ok,
    payload)`` entries.  The compactor (:mod:`repro.runtime.janitor`)
    merges loose per-task results into bundles so collecting a 100k-task
    sweep opens hundreds of files, not 100k.  Bundles may overlap loose
    files (or each other) transiently — readers key entries by index, and
    re-executed tasks republish byte-identical payloads, so duplicates
    are harmless by construction.
``attempts/task-NNNNNNN.pkl``
    Retry accounting: a plain-text integer counting how many times the
    task's lease expired and the reaper re-queued it.
``failed/task-NNNNNNN.pkl``
    Quarantine for poisoned tasks: after ``max_retries`` re-queues the
    reaper moves the task file here (instead of crash-looping the fleet)
    and publishes an ``ok=False`` result so collectors fail fast.

Every :meth:`QueueExecutor.execute` call creates its own
``run-<unique-id>/`` layout under the shared root, so repeated or
concurrent runs over one root can never observe each other's task or
result files (a stale ``results/`` dir would otherwise satisfy a new
run's result poll).  Successful runs remove their namespace; failed runs
leave it behind with the error payloads for debugging.

Workers are stateless loops over ``claim -> heartbeat -> run -> publish``
across every layout under the root (the root itself, when callers drive
the protocol functions directly, plus all ``run-*`` namespaces); run one
with ``python -m repro.runtime.queue <root> serve --watch`` on every host
sharing the directory.  The CLI also exposes the janitor verbs —
``status`` (machine-readable queue counts), ``reap`` (re-queue orphaned
claims) and ``compact`` (bundle loose results) — and drains gracefully on
SIGTERM: the in-flight task finishes and publishes before the process
exits.  Results are reassembled in submission order, so queue execution
stays bit-identical with the serial oracle.

Tasks may execute more than once (a lease expiry re-queues work a slow or
dead worker already started), so task callables must be pure functions of
their argument — exactly the contract :mod:`repro.runtime.tasks` already
imposes for cross-backend determinism.

Environment knobs (all optional; see :func:`default_lease_s` etc.):

``REPRO_RUNTIME_QUEUE_DIR``
    Shared queue root the registry backend uses.
``REPRO_RUNTIME_LEASE_S``
    Lease length in seconds (default 30).
``REPRO_RUNTIME_MAX_RETRIES``
    Re-queues before quarantine (default 3).
``REPRO_RUNTIME_COMPACT_THRESHOLD``
    Loose results per layout that trigger compaction, and the bundle
    size (default 512; 0 disables auto-compaction).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import signal
import socket
import threading
import time
import traceback
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.executors import Executor
from repro.runtime.tasks import Task, WorkList, gather

_TASKS_DIR = "tasks"
_CLAIMS_DIR = "claims"
_RESULTS_DIR = "results"
_FAILED_DIR = "failed"
_ATTEMPTS_DIR = "attempts"
_TMP_DIR = "tmp"

#: per-execute namespace directories created under a shared queue root
_RUN_PREFIX = "run-"

#: single shared task callable of one run (written when all tasks agree)
_SHARED_FN_FILE = "fn.pkl"

#: suffix of the lease-metadata sidecar next to each claim file
_LEASE_SUFFIX = ".lease"

#: filename prefix of compacted result bundles under ``results/``
_BUNDLE_PREFIX = "bundle-"

#: environment variable naming the shared queue root the registry backend
#: uses (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``); unset
#: selects the self-contained single-host mode on a private temp dir
QUEUE_DIR_ENV = "REPRO_RUNTIME_QUEUE_DIR"

#: environment variables overriding the fleet-hardening defaults
LEASE_ENV = "REPRO_RUNTIME_LEASE_S"
MAX_RETRIES_ENV = "REPRO_RUNTIME_MAX_RETRIES"
COMPACT_THRESHOLD_ENV = "REPRO_RUNTIME_COMPACT_THRESHOLD"

DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_RETRIES = 3
DEFAULT_COMPACT_THRESHOLD = 512

#: per-process cache of the *current* run's unpickled shared callable,
#: keyed by fn.pkl path.  Bounded to one entry: a shared callable can be
#: as heavy as a whole packed inference engine, and a long-lived --watch
#: worker serves runs one after another (claims drain layouts in sorted
#: order), so caching more than the run being drained only leaks memory.
_SHARED_FN_CACHE: dict = {}


def _env_number(name: str, default: float, convert) -> float:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return convert(value)
    except ValueError as error:
        raise ValueError(f"{name}={value!r} is not a valid number") from error


def default_lease_s() -> float:
    """Lease length in seconds (:data:`LEASE_ENV`, default 30)."""
    lease = _env_number(LEASE_ENV, DEFAULT_LEASE_S, float)
    if lease <= 0:
        raise ValueError(f"{LEASE_ENV} must be positive, got {lease}")
    return lease


def default_max_retries() -> int:
    """Re-queues before quarantine (:data:`MAX_RETRIES_ENV`, default 3)."""
    retries = _env_number(MAX_RETRIES_ENV, DEFAULT_MAX_RETRIES, int)
    if retries < 0:
        raise ValueError(f"{MAX_RETRIES_ENV} must be >= 0, got {retries}")
    return int(retries)


def default_compact_threshold() -> int:
    """Loose results triggering compaction (:data:`COMPACT_THRESHOLD_ENV`).

    Doubles as the bundle size; ``0`` disables automatic compaction
    (explicit ``compact`` CLI/API calls still work at the default size).
    """
    threshold = _env_number(
        COMPACT_THRESHOLD_ENV, DEFAULT_COMPACT_THRESHOLD, int
    )
    if threshold < 0:
        raise ValueError(
            f"{COMPACT_THRESHOLD_ENV} must be >= 0, got {threshold}"
        )
    return int(threshold)


def default_owner() -> str:
    """This worker's lease owner id (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _task_filename(index: int) -> str:
    return f"task-{index:07d}.pkl"


def _task_index(filename: str) -> int:
    """Inverse of :func:`_task_filename` (``task-0000012.pkl`` -> ``12``)."""
    return int(filename[len("task-"):-len(".pkl")])


def init_queue_dirs(root: str) -> None:
    """Create the queue directory layout (idempotent)."""
    for sub in (_TASKS_DIR, _CLAIMS_DIR, _RESULTS_DIR, _FAILED_DIR,
                _ATTEMPTS_DIR, _TMP_DIR):
        os.makedirs(os.path.join(root, sub), exist_ok=True)


def _atomic_write(root: str, subdir: str, filename: str,
                  payload: object) -> None:
    """Publish ``payload`` under ``root/subdir/filename`` via tmp + rename."""
    tmp_path = os.path.join(root, _TMP_DIR, f"{filename}.{uuid.uuid4().hex}")
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, os.path.join(root, subdir, filename))


def _atomic_write_exclusive(root: str, subdir: str, filename: str,
                            payload: object) -> bool:
    """Like :func:`_atomic_write` but never overwrites; False if it exists.

    ``os.link`` fails with ``EEXIST`` where ``os.replace`` would clobber —
    the primitive the janitor uses to publish a *failure* result without
    ever destroying a success a stalled worker managed to publish first.
    """
    tmp_path = os.path.join(root, _TMP_DIR, f"{filename}.{uuid.uuid4().hex}")
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        os.link(tmp_path, os.path.join(root, subdir, filename))
    except FileExistsError:
        return False
    finally:
        os.remove(tmp_path)
    return True


def _atomic_write_text(root: str, subdir: str, filename: str,
                       text: str) -> None:
    """Like :func:`_atomic_write` but plain text (operator-inspectable)."""
    tmp_path = os.path.join(root, _TMP_DIR, f"{filename}.{uuid.uuid4().hex}")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.makedirs(os.path.join(root, subdir), exist_ok=True)
    os.replace(tmp_path, os.path.join(root, subdir, filename))


def write_shared_fn(root: str, fn) -> None:
    """Publish the run's single shared task callable (``fn.pkl``)."""
    _atomic_write(root, "", _SHARED_FN_FILE, fn)


def _load_shared_fn(root: str):
    path = os.path.join(root, _SHARED_FN_FILE)
    key = os.path.abspath(path)
    cached = _SHARED_FN_CACHE.get(key)
    if cached is None:
        with open(path, "rb") as handle:
            cached = pickle.load(handle)
        _SHARED_FN_CACHE.clear()
        _SHARED_FN_CACHE[key] = cached
    return cached


def enqueue_task(root: str, task: Task, *, shared_fn: bool = False) -> None:
    """Publish one pending task into the queue.

    With ``shared_fn`` the task file carries ``None`` in the callable slot
    and workers resolve it from the layout's ``fn.pkl`` (which the
    producer must have published via :func:`write_shared_fn` first).
    """
    _atomic_write(root, _TASKS_DIR, _task_filename(task.index),
                  (task.index, None if shared_fn else task.fn, task.arg))


def _lease_path(claimed_path: str) -> str:
    return claimed_path + _LEASE_SUFFIX


def read_lease(claimed_path: str) -> Optional[Dict[str, object]]:
    """Lease metadata of a claim (``None`` when the sidecar is missing).

    A missing sidecar means either the claim predates the lease protocol
    or the claimant sits in the microsecond window between the claim
    rename and the sidecar write; callers fall back to
    :func:`default_lease_s` and an unknown owner.
    """
    try:
        with open(_lease_path(claimed_path), "rb") as handle:
            lease = pickle.load(handle)
    except (OSError, EOFError, pickle.UnpicklingError):
        return None
    return lease if isinstance(lease, dict) else None


def claim_next_task(root: str, *, owner: Optional[str] = None,
                    lease_s: Optional[float] = None) -> Optional[str]:
    """Atomically claim a lease on the lowest-numbered pending task.

    Returns the claimed file's path (now under ``claims/``), or ``None``
    when no pending task exists.  Losing a rename race to another worker is
    normal — the loser just moves on to the next file.  The winner's lease
    clock starts at the claim (the rename preserves the stale enqueue
    mtime, so it is bumped immediately) and its metadata sidecar names
    ``owner`` so operators can see who holds what.
    """
    if lease_s is None:
        lease_s = default_lease_s()
    tasks_dir = os.path.join(root, _TASKS_DIR)
    for filename in sorted(os.listdir(tasks_dir)):
        if not filename.endswith(".pkl"):
            continue
        source = os.path.join(tasks_dir, filename)
        target = os.path.join(root, _CLAIMS_DIR, filename)
        try:
            os.rename(source, target)
        except OSError:
            continue  # another worker won the claim
        try:
            os.utime(target)  # start the lease clock now, not at enqueue
        except OSError:
            pass  # claim already reaped/finished — vanishingly unlikely
        _atomic_write(root, _CLAIMS_DIR, filename + _LEASE_SUFFIX,
                      {"owner": owner or default_owner(),
                       "lease_s": float(lease_s)})
        return target
    return None


def heartbeat(claimed_path: str) -> bool:
    """Renew a claim's lease by bumping its mtime; False if it is gone."""
    try:
        os.utime(claimed_path)
    except OSError:
        return False
    return True


class _LeaseHeartbeat:
    """Background thread renewing one claim's lease while its task runs.

    Bumps the claim file's mtime every quarter lease so a live worker
    never loses its claim to the reaper, no matter how long the task
    takes; stops silently if the claim disappears (the task finished, or
    an aggressive reaper re-queued it — the latter is benign because
    tasks are pure and results idempotent).
    """

    def __init__(self, claimed_path: str, lease_s: float) -> None:
        self._claimed_path = claimed_path
        self._interval_s = max(lease_s / 4.0, 0.01)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not heartbeat(self._claimed_path):
                break


def run_claimed_task(root: str, claimed_path: str) -> Optional[int]:
    """Execute one claimed task file and publish its result.

    The claim's lease is renewed by a background heartbeat for as long as
    the task runs.  Worker exceptions are published as ``ok=False``
    results (with the traceback as payload) so the submitting executor
    re-raises them instead of waiting forever.  Returns the task index,
    or ``None`` when the claim vanished before it could be read (lost to
    a racing janitor in the claim/sidecar write gap — rare and benign,
    the task is executed by whoever holds it now).

    If the lease was lost mid-task (claim re-queued by a reaper after a
    missed heartbeat) the result is still published — it is byte-identical
    to whatever the re-execution will produce — but the *current* holder's
    claim files are left alone.
    """
    try:
        with open(claimed_path, "rb") as handle:
            index, fn, arg = pickle.load(handle)
    except FileNotFoundError:
        return None
    lease = read_lease(claimed_path) or {}
    owner = lease.get("owner")
    lease_s = float(lease.get("lease_s") or default_lease_s())
    if fn is None:
        fn = _load_shared_fn(root)
    with _LeaseHeartbeat(claimed_path, lease_s):
        try:
            payload: object = fn(arg)
            ok = True
        except Exception:  # noqa: BLE001 - workers must never die silently
            payload = traceback.format_exc()
            ok = False
    _atomic_write(root, _RESULTS_DIR, _task_filename(index),
                  (index, ok, payload))
    _release_claim(claimed_path, owner)
    return index


def _release_claim(claimed_path: str, owner: Optional[str]) -> None:
    """Remove a finished claim + sidecar, unless another worker holds it.

    After a lease expiry the same claim path may belong to a different
    worker; deleting *their* claim would orphan their accounting, so the
    release is skipped unless the sidecar still names *our* owner — a
    missing sidecar counts as "not ours" too, because a new claimant sits
    in its claim/sidecar write gap exactly when its sidecar is absent.
    """
    if owner is not None:
        current = read_lease(claimed_path)
        if current is None or current.get("owner") != owner:
            return
    for path in (claimed_path, _lease_path(claimed_path)):
        try:
            os.remove(path)
        except OSError:
            pass


def read_attempts(root: str, index: int) -> int:
    """How many times the reaper has re-queued task ``index`` (0 = never)."""
    path = os.path.join(root, _ATTEMPTS_DIR, _task_filename(index))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return 0


def record_attempt(root: str, index: int, attempts: int) -> None:
    """Persist the re-queue count of task ``index`` (plain text, atomic)."""
    _atomic_write_text(root, _ATTEMPTS_DIR, _task_filename(index),
                       f"{attempts}\n")


def _layout_roots(root: str) -> List[str]:
    """Queue layouts reachable under ``root``.

    The root itself counts when it carries a ``tasks/`` dir (callers
    driving the protocol functions directly), followed by every
    ``run-*`` namespace an executor created beneath it.
    """
    roots: List[str] = []
    if os.path.isdir(os.path.join(root, _TASKS_DIR)):
        roots.append(root)
    try:
        children = sorted(os.listdir(root))
    except OSError:
        children = []
    for name in children:
        if name.startswith(_RUN_PREFIX):
            candidate = os.path.join(root, name)
            if os.path.isdir(os.path.join(candidate, _TASKS_DIR)):
                roots.append(candidate)
    return roots


def _serve_one(root: str, *, owner: Optional[str],
               lease_s: Optional[float]) -> Optional[str]:
    """Claim and run one pending task from any layout under ``root``.

    Returns the layout that supplied the task, or ``None`` when every
    layout is drained.
    """
    for layout in _layout_roots(root):
        claimed = claim_next_task(layout, owner=owner, lease_s=lease_s)
        if claimed is not None:
            if run_claimed_task(layout, claimed) is None:
                continue  # claim vanished under us; try another layout
            return layout
    return None


def serve(root: str, *, max_tasks: Optional[int] = None,
          owner: Optional[str] = None, lease_s: Optional[float] = None,
          should_stop: Optional[Callable[[], bool]] = None,
          compact_threshold: Optional[int] = None) -> int:
    """Drain the queue: claim and run tasks until none remain.

    This is the worker loop ``python -m repro.runtime.queue <root> serve``
    runs; the executor also calls it inline for single-host operation.
    Tasks are drained from the root's own layout and from every ``run-*``
    namespace under it, each under a heartbeat-renewed lease.  Returns
    the number of tasks executed.

    Parameters
    ----------
    max_tasks:
        Stop after this many tasks (``None`` drains until empty).
    owner, lease_s:
        Lease identity and length of this worker's claims (defaults:
        :func:`default_owner`, :func:`default_lease_s`).
    should_stop:
        Polled between tasks; returning true stops the loop after the
        in-flight task — the graceful-drain hook the CLI wires to SIGTERM.
    compact_threshold:
        When set and positive, every ``compact_threshold`` tasks served
        from a layout triggers opportunistic result compaction there
        (``None`` resolves :func:`default_compact_threshold`).
    """
    if compact_threshold is None:
        compact_threshold = default_compact_threshold()
    executed = 0
    served_per_layout: Dict[str, int] = {}
    while max_tasks is None or executed < max_tasks:
        if should_stop is not None and should_stop():
            break
        layout = _serve_one(root, owner=owner, lease_s=lease_s)
        if layout is None:
            break
        executed += 1
        served_per_layout[layout] = served_per_layout.get(layout, 0) + 1
        if compact_threshold and \
                served_per_layout[layout] % compact_threshold == 0:
            from repro.runtime import janitor

            janitor.compact_layout(layout, chunk_size=compact_threshold)
    return executed


def _read_result_entries(root: str) -> Dict[int, Tuple[bool, object]]:
    """All published results of a layout, keyed by task index.

    Reads loose per-task files and compacted bundles alike.  Duplicate
    indices (a bundle overlapping a not-yet-deleted loose file, or a
    re-executed task) collapse by key — the payloads are byte-identical
    by the determinism contract.  Files that vanish between the listing
    and the open were just compacted; the next poll sees their bundle.
    """
    results_dir = os.path.join(root, _RESULTS_DIR)
    entries: Dict[int, Tuple[bool, object]] = {}
    try:
        names = sorted(os.listdir(results_dir))
    except OSError:
        return entries
    for name in names:
        if not name.endswith(".pkl"):
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            continue  # compacted away between listdir and open
        if name.startswith(_BUNDLE_PREFIX):
            for index, ok, value in payload:
                entries[index] = (ok, value)
        else:
            index, ok, value = payload
            entries[index] = (ok, value)
    return entries


def published_indices(root: str,
                      bundle_cache: Optional[Dict[str, frozenset]] = None
                      ) -> set:
    """Indices of every published result, *without* reading payloads.

    Loose result files carry their index in the filename; bundles are
    opened once to list their indices — and, being immutable and uniquely
    named, that set can be memoised in ``bundle_cache`` across the poll
    cycles of one collection, keeping the poll loop O(new bundles) instead
    of re-deserialising every payload each cycle.
    """
    results_dir = os.path.join(root, _RESULTS_DIR)
    indices: set = set()
    try:
        names = os.listdir(results_dir)
    except OSError:
        return indices
    for name in names:
        if not name.endswith(".pkl"):
            continue
        if not name.startswith(_BUNDLE_PREFIX):
            try:
                indices.add(_task_index(name))
            except ValueError:
                pass  # foreign file in results/; ignore
            continue
        cached = None if bundle_cache is None else bundle_cache.get(name)
        if cached is None:
            try:
                with open(os.path.join(results_dir, name), "rb") as handle:
                    cached = frozenset(
                        index for index, _, _ in pickle.load(handle)
                    )
            except FileNotFoundError:
                continue
            if bundle_cache is not None:
                bundle_cache[name] = cached
        indices |= cached
    return indices


def collect_results(root: str, expected: int, *, timeout_s: float,
                    poll_interval_s: float,
                    max_retries: Optional[int] = None,
                    reap_orphans: bool = True,
                    compact_threshold: Optional[int] = None,
                    maintenance_interval_s: Optional[float] = None,
                    inline_worker: Optional[Callable[[], object]] = None
                    ) -> List[object]:
    """Gather all ``expected`` results, polling until present or timeout.

    Each poll cycle runs ``inline_worker`` when given — the executor's
    hook for draining its own queue in-process.  On a coarser
    **maintenance cadence** (``maintenance_interval_s``; defaults to ten
    poll intervals, at least 1 s — lease expiry is measured in tens of
    seconds, so reaping at poll frequency would only hammer the shared
    filesystem) the collector also (1) **reaps** the layout: expired
    leases are re-queued (or quarantined after ``max_retries`` re-queues)
    so one dead worker can never stall the run forever, and (2) compacts
    loose results once they outnumber ``compact_threshold``.  Polling
    counts result *indices* (filenames plus memoised bundle listings) so
    a huge grid is not re-deserialised every cycle; payloads are read
    exactly once, from loose files and bundles alike, and reassembled in
    submission order.  The first ``ok=False`` payload (worker traceback
    or poisoned-task quarantine notice) is re-raised as ``RuntimeError``.
    """
    if max_retries is None:
        max_retries = default_max_retries()
    if compact_threshold is None:
        compact_threshold = default_compact_threshold()
    if maintenance_interval_s is None:
        maintenance_interval_s = max(1.0, 10.0 * poll_interval_s)
    from repro.runtime import janitor

    deadline = time.monotonic() + timeout_s
    bundle_cache: Dict[str, frozenset] = {}
    next_maintenance = time.monotonic()  # first cycle maintains immediately
    while True:
        if inline_worker is not None:
            inline_worker()
        if time.monotonic() >= next_maintenance:
            if reap_orphans:
                janitor.reap_layout(root, max_retries=max_retries)
            if compact_threshold:
                janitor.compact_layout(root, chunk_size=compact_threshold)
            next_maintenance = time.monotonic() + maintenance_interval_s
        present = published_indices(root, bundle_cache)
        if len(present) >= expected:
            entries = _read_result_entries(root)
            if len(entries) >= expected:
                break
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"queue at {root!r} produced {len(present)} of {expected} "
                f"results within {timeout_s:.1f}s; are workers running? "
                f"(`python -m repro.runtime.queue {root} status` shows the "
                f"queue state)"
            )
        time.sleep(poll_interval_s)
    failures = sorted(
        (index, payload) for index, (ok, payload) in entries.items() if not ok
    )
    if failures:
        index, payload = failures[0]
        raise RuntimeError(
            f"queue task {index} failed on a worker:\n{payload}"
        )
    return gather(
        ((index, payload) for index, (_, payload) in entries.items()),
        expected,
    )


class QueueExecutor(Executor):
    """Executor speaking the file/dir work-queue protocol.

    Parameters
    ----------
    root:
        Shared queue directory.  ``None`` (the default) creates a private
        temporary queue per :meth:`execute` call — the single-host mode.
        When the runtime registry builds this backend
        (``backend="queue"`` / ``REPRO_RUNTIME_BACKEND=queue``) the root
        defaults from the :data:`QUEUE_DIR_ENV` environment variable, so
        multi-host execution is reachable without constructing the
        executor by hand.
    inline_worker:
        When true (default) the executor also drains the queue in-process
        while collecting, so it works with zero external setup — and
        *cooperates* with any external workers pointed at ``root`` (each
        task is claimed exactly once, whoever gets it first), including
        re-executing tasks the reaper recovered from a dead worker.  Set
        false for a pure coordinator that only enqueues, reaps and polls;
        that mode requires an explicit shared ``root`` — with a private
        temp dir no external worker could ever find the tasks and every
        run would just time out.
    workers:
        Accepted for registry compatibility; the inline worker is always a
        single loop (parallelism comes from running external workers).
    timeout_s, poll_interval_s:
        Result-polling knobs for the external-worker mode.
    lease_s:
        Lease length of claims made by the inline worker, and implicitly
        the recovery latency after a worker dies (its orphaned claim is
        re-queued one lease length after its last heartbeat).  ``None``
        resolves ``REPRO_RUNTIME_LEASE_S`` / the 30 s default.
    max_retries:
        Lease-expiry re-queues per task before the reaper quarantines it
        under ``failed/`` and fails the run (``None`` resolves
        ``REPRO_RUNTIME_MAX_RETRIES`` / 3).
    compact_threshold:
        Loose result files that trigger compaction into bundles, and the
        bundle size; ``0`` disables auto-compaction (``None`` resolves
        ``REPRO_RUNTIME_COMPACT_THRESHOLD`` / 512).
    """

    name = "queue"

    def __init__(self, root: Optional[str] = None, *,
                 inline_worker: bool = True, workers: int = 1,
                 timeout_s: float = 300.0,
                 poll_interval_s: float = 0.05,
                 lease_s: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 compact_threshold: Optional[int] = None) -> None:
        if timeout_s <= 0 or poll_interval_s <= 0:
            raise ValueError("timeout_s and poll_interval_s must be positive")
        if root is None and not inline_worker:
            raise ValueError(
                "inline_worker=False needs an explicit shared root: on a "
                "private temp queue no external worker could ever see the "
                "tasks, so every execute() would only time out"
            )
        self.root = root
        self.inline_worker = bool(inline_worker)
        self.workers = int(workers)
        self.timeout_s = float(timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.lease_s = default_lease_s() if lease_s is None else float(lease_s)
        self.max_retries = (default_max_retries() if max_retries is None
                            else int(max_retries))
        self.compact_threshold = (
            default_compact_threshold() if compact_threshold is None
            else int(compact_threshold)
        )
        if self.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.compact_threshold < 0:
            raise ValueError("compact_threshold must be >= 0 (0 disables)")

    def _queue_root(self) -> Tuple[str, bool]:
        if self.root is not None:
            return self.root, False
        import tempfile

        return tempfile.mkdtemp(prefix="repro-queue-"), True

    def execute(self, worklist: WorkList) -> List[object]:
        if not worklist:
            return []
        root, ephemeral = self._queue_root()
        # a private namespace per run: re-running over a shared root (or
        # two executors sharing it concurrently) must never see another
        # run's task/result files — stale results would otherwise satisfy
        # this run's poll
        run_root = os.path.join(root, _RUN_PREFIX + uuid.uuid4().hex)
        init_queue_dirs(run_root)
        try:
            shared = len({id(task.fn) for task in worklist}) == 1
            if shared:
                write_shared_fn(run_root, worklist.tasks[0].fn)
            for task in worklist:
                enqueue_task(run_root, task, shared_fn=shared)
            serve_inline = None
            if self.inline_worker:
                owner = default_owner()

                def serve_inline() -> int:
                    # drains fresh *and* reaper-re-queued tasks each poll
                    return serve(run_root, owner=owner, lease_s=self.lease_s,
                                 compact_threshold=self.compact_threshold)

            results = collect_results(
                run_root, len(worklist), timeout_s=self.timeout_s,
                poll_interval_s=self.poll_interval_s,
                max_retries=self.max_retries,
                compact_threshold=self.compact_threshold,
                # reap on the lease scale: recovery latency stays a
                # fraction of the lease without per-poll claim scans
                maintenance_interval_s=max(self.poll_interval_s,
                                           self.lease_s / 4.0),
                inline_worker=serve_inline,
            )
        finally:
            if ephemeral:
                import shutil

                shutil.rmtree(root, ignore_errors=True)
        # success: retire the namespace (failed runs keep theirs so the
        # published error payloads stay inspectable)
        if not ephemeral:
            import shutil

            shutil.rmtree(run_root, ignore_errors=True)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QueueExecutor(root={self.root!r}, "
                f"inline_worker={self.inline_worker}, "
                f"lease_s={self.lease_s}, max_retries={self.max_retries}, "
                f"compact_threshold={self.compact_threshold})")


def _serve_command(args: argparse.Namespace) -> int:
    """Worker loop with graceful SIGTERM drain."""
    stop = threading.Event()

    def _drain(signum, frame):  # pragma: no cover - exercised via subprocess
        stop.set()

    # graceful drain: finish (and publish) the in-flight task, then exit
    # instead of abandoning a claim the reaper would have to recover
    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        pass  # not the main thread (tests driving main() directly)
    owner = default_owner()
    total = 0
    try:
        while True:
            remaining = (None if args.max_tasks is None
                         else args.max_tasks - total)
            if remaining is not None and remaining <= 0:
                break
            total += serve(
                args.root, max_tasks=remaining, owner=owner,
                lease_s=args.lease_seconds, should_stop=stop.is_set,
                compact_threshold=args.compact_threshold,
            )
            if stop.is_set() or not args.watch:
                break
            if args.reap:
                from repro.runtime import janitor

                janitor.reap(args.root, max_retries=args.max_retries)
            if stop.wait(args.poll_interval):
                break
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    drained = " (drained on SIGTERM)" if stop.is_set() else ""
    print(f"executed {total} task(s) from {args.root}{drained}")
    return 0


def _status_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    print(json.dumps(janitor.status(args.root), indent=2, sort_keys=True))
    return 0


def _reap_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    report = janitor.reap(args.root, max_retries=args.max_retries)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def _compact_command(args: argparse.Namespace) -> int:
    from repro.runtime import janitor

    chunk = args.compact_threshold or DEFAULT_COMPACT_THRESHOLD
    bundles = janitor.compact(args.root, chunk_size=chunk, partial=True)
    print(json.dumps({"bundles_written": bundles}, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "serve": _serve_command,
    "status": _status_command,
    "reap": _reap_command,
    "compact": _compact_command,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.runtime.queue <root> [serve|status|compact|reap]``.

    ``serve`` (the default) is the worker loop — it drains every layout
    under the root, optionally forever (``--watch``), reaping orphans
    between sweeps and draining gracefully on SIGTERM.  ``status`` prints
    a machine-readable JSON summary (queued/claimed/done/failed counts,
    per layout).  ``reap`` re-queues expired leases and quarantines
    poisoned tasks once.  ``compact`` bundles loose result files
    (including a final partial bundle).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.queue",
        description="Operate a repro runtime work-queue directory.",
    )
    parser.add_argument("root", help="shared queue directory")
    parser.add_argument(
        "command", nargs="?", default="serve", choices=sorted(_COMMANDS),
        help="what to do (default: serve, the worker loop)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None,
        help="serve: stop after this many tasks (default: drain until empty)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="serve: keep polling for new tasks instead of exiting when empty",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="serve: seconds between polls in --watch mode",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=None,
        help=f"lease length of claims (default: ${LEASE_ENV} or "
             f"{DEFAULT_LEASE_S:g})",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help=f"reap: re-queues before quarantine (default: ${MAX_RETRIES_ENV} "
             f"or {DEFAULT_MAX_RETRIES})",
    )
    parser.add_argument(
        "--compact-threshold", type=int, default=None,
        help=f"loose results triggering compaction / bundle size (default: "
             f"${COMPACT_THRESHOLD_ENV} or {DEFAULT_COMPACT_THRESHOLD}; "
             f"0 disables)",
    )
    parser.add_argument(
        "--no-reap", dest="reap", action="store_false",
        help="serve --watch: do not reap orphaned claims between polls",
    )
    args = parser.parse_args(argv)
    if args.lease_seconds is None:
        args.lease_seconds = default_lease_s()
    if args.max_retries is None:
        args.max_retries = default_max_retries()
    if args.compact_threshold is None:
        args.compact_threshold = default_compact_threshold()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
