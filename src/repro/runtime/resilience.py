"""Centralised retry / backoff / outage-classification policy.

Every fleet component that survives trouble used to carry its own ad-hoc
notion of "retryable": the queue protocol retried nothing, the serving
circuit breaker had a fixed cooldown, and the object-store backend
surfaced every transport hiccup straight to the worker loop.  This
module is the one place that policy lives now:

:func:`classify_outage`
    Splits an exception into **transient** (a storage round trip timed
    out, a conditional verb hit a conflict storm, a fault-injection
    layer dropped the call — retry with backoff) and **deterministic**
    (the task itself raised — fail fast so the janitor's quarantine
    machinery sees the poison pill instead of the fleet retrying it
    forever).

:class:`BackoffPolicy` / :func:`decorrelated_jitter`
    The AWS-style *decorrelated jitter* schedule: each delay is drawn
    uniformly from ``[base, min(max, previous * multiplier)]``.  Jitter
    decorrelates a thundering herd of restarting workers; the
    multiplier keeps a persistent outage from being hammered.

:func:`retry_call` / :func:`retry_backoff`
    The retry driver (and its decorator form): transient outages sleep
    a jittered delay and retry up to ``max_attempts``; deterministic
    failures — and the last transient attempt — re-raise unchanged.

:class:`RestartBudget`
    The supervisor's crash-loop guard: a sliding-window counter of
    worker crashes.  A worker that dies ``max_restarts`` times within
    ``window_s`` is *benched* (reported, never respawned) instead of
    burning the host on an infinite crash loop.

Adopters: :class:`~repro.runtime.store.ObjectStore` (per-verb retries),
:mod:`repro.runtime.queue` (heartbeat + collector maintenance),
:class:`~repro.runtime.supervisor.Supervisor` (restart backoff and
crash-loop budgets) and the serving
:class:`~repro.serving.admission.CircuitBreaker` (growing half-open
cooldowns).  An exception may force its own classification by carrying
an ``outage_class`` attribute set to :data:`TRANSIENT` or
:data:`DETERMINISTIC`.
"""

from __future__ import annotations

import functools
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

#: classification labels returned by :func:`classify_outage`
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: exception types that signal infrastructure trouble rather than a bug
#: in the task: storage/transport errors and timeouts.  ConnectionError
#: and TimeoutError are OSError subclasses on supported pythons but stay
#: spelled out so the policy reads as what it means.
TRANSIENT_TYPES = (OSError, TimeoutError, ConnectionError)

#: module-level jitter source for callers that do not inject their own;
#: retry *timing* never feeds result bytes, so an unseeded stream here
#: cannot break the determinism contract
_MODULE_RNG = random.Random()


def classify_outage(error: BaseException) -> str:
    """Classify an exception as :data:`TRANSIENT` or :data:`DETERMINISTIC`.

    An explicit ``outage_class`` attribute on the exception wins (the
    fault-injection layer marks its raises this way); otherwise storage
    and transport errors (:data:`TRANSIENT_TYPES`) are transient and
    everything else — ``ValueError`` from a task, a pickling failure, a
    genuine bug — is deterministic: retrying it would only produce the
    same failure slower.
    """
    marked = getattr(error, "outage_class", None)
    if marked in (TRANSIENT, DETERMINISTIC):
        return marked
    if isinstance(error, TRANSIENT_TYPES):
        return TRANSIENT
    return DETERMINISTIC


@dataclass(frozen=True)
class BackoffPolicy:
    """Decorrelated-jitter exponential backoff schedule.

    ``base_delay_s``
        Floor of every delay (and the first draw's lower bound).
    ``max_delay_s``
        Ceiling no delay ever exceeds, however long the outage.
    ``multiplier``
        Upper-bound growth per attempt: attempt *n+1* draws from
        ``[base, min(max, delay_n * multiplier)]``.
    ``max_attempts``
        Total calls :func:`retry_call` makes (1 = no retries).
    """

    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 3.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


#: storage-verb retries: quick, bounded — a worker stuck behind a real
#: outage should die and let the supervisor/reaper machinery take over
DEFAULT_RETRY_POLICY = BackoffPolicy()


def decorrelated_jitter(policy: BackoffPolicy,
                        previous_s: Optional[float] = None,
                        rng: Optional[random.Random] = None) -> float:
    """Next delay of the decorrelated-jitter schedule.

    ``previous_s`` is the delay the caller slept last time (``None``
    before the first retry).  Each draw is uniform over ``[base,
    min(max, previous * multiplier)]`` — the classic AWS schedule that
    spreads a herd of retriers apart instead of synchronising them.
    """
    if rng is None:
        rng = _MODULE_RNG
    previous = policy.base_delay_s if previous_s is None else previous_s
    ceiling = max(policy.base_delay_s,
                  min(policy.max_delay_s, previous * policy.multiplier))
    return rng.uniform(policy.base_delay_s, ceiling)


def retry_call(fn: Callable[[], object], *,
               policy: Optional[BackoffPolicy] = None,
               classify: Callable[[BaseException], str] = classify_outage,
               rng: Optional[random.Random] = None,
               sleep: Callable[[float], None] = time.sleep,
               on_retry: Optional[
                   Callable[[int, BaseException, float], None]] = None
               ) -> object:
    """Call ``fn`` with transient-outage retries under ``policy``.

    Deterministic failures (per ``classify``) re-raise immediately;
    transient ones sleep a decorrelated-jitter delay and retry, and the
    final attempt's exception re-raises unchanged so callers see the
    real error, not a retry wrapper.  ``on_retry(attempt, error,
    delay_s)`` observes each retry — the hook loggers and tests use.
    """
    if policy is None:
        policy = DEFAULT_RETRY_POLICY
    delay: Optional[float] = None
    attempt = 1
    while True:
        try:
            return fn()
        except Exception as error:
            if classify(error) != TRANSIENT or attempt >= policy.max_attempts:
                raise
            delay = decorrelated_jitter(policy, delay, rng)
            if on_retry is not None:
                on_retry(attempt, error, delay)
            sleep(delay)
            attempt += 1


def retry_backoff(policy: Optional[BackoffPolicy] = None, **retry_kwargs):
    """Decorator form of :func:`retry_call`.

    ``@retry_backoff(BackoffPolicy(max_attempts=3))`` wraps a function
    so every call runs under the transient-retry driver; keyword
    arguments pass through (``classify=``, ``rng=``, ``sleep=``,
    ``on_retry=``).
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            return retry_call(lambda: fn(*args, **kwargs),
                              policy=policy, **retry_kwargs)
        return wrapper
    return decorate


class RestartBudget:
    """Sliding-window crash counter: the supervisor's crash-loop guard.

    :meth:`record` logs one crash at ``now`` and answers whether the
    worker may be respawned: ``True`` while fewer than ``max_restarts``
    crashes fall inside the trailing ``window_s`` seconds, ``False``
    once the budget is exhausted — the supervisor then *benches* the
    worker slot instead of respawning it forever.  Crashes age out of
    the window, so a worker that has run healthily for a while earns
    its budget back; :meth:`reset` clears the history outright.
    """

    def __init__(self, max_restarts: int = 3, window_s: float = 60.0) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.max_restarts = int(max_restarts)
        self.window_s = float(window_s)
        self._crashes: Deque[float] = deque()

    def record(self, now: Optional[float] = None) -> bool:
        """Record one crash; False when the crash-loop budget is spent."""
        current = time.monotonic() if now is None else now
        cutoff = current - self.window_s
        while self._crashes and self._crashes[0] <= cutoff:
            self._crashes.popleft()
        self._crashes.append(current)
        return len(self._crashes) < self.max_restarts

    @property
    def crashes_in_window(self) -> int:
        """Crashes currently inside the sliding window (post-:meth:`record`)."""
        return len(self._crashes)

    def reset(self) -> None:
        """Forget the crash history (a healthy run redeems the worker)."""
        self._crashes.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RestartBudget(max_restarts={self.max_restarts}, "
                f"window_s={self.window_s}, "
                f"recorded={len(self._crashes)})")
