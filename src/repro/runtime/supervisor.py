"""Fleet supervisor: the daemon that *acts* on autoscale advisories.

PR 5 taught the queue to *recommend* (``autoscale_advisory``: scale_up /
scale_down / hold); this module closes the loop.  The
:class:`Supervisor` is a long-lived controller —
``python -m repro.runtime.queue <root> supervise`` — that

* polls the advisory and **spawns / retires real local worker
  subprocesses** (``serve --watch`` loops) to track the backlog,
* damps flapping with a **cooldown** between scaling actions and the
  scale-down **hysteresis** of
  :func:`repro.runtime.janitor.desired_workers`,
* **restarts crashed workers** under a decorrelated-jitter exponential
  backoff (:mod:`repro.runtime.resilience`), so a storm of dying
  workers does not synchronise into a respawn stampede,
* enforces a per-slot **crash-loop budget**: a worker that dies
  ``max_restarts`` times inside ``restart_window_s`` is *benched* —
  reported in the event stream and never respawned — instead of
  burning the host forever (restart recovery is deliberately *not*
  subject to the scaling cooldown: restoring lost capacity is repair,
  not scaling),
* **drains cleanly**: SIGTERM to the supervisor forwards SIGTERM to
  every worker, each of which finishes and publishes its in-flight
  task before exiting (the queue CLI's graceful-drain contract), and
* narrates everything as a **machine-readable JSON event stream**
  (``scale_up`` / ``scale_down`` / ``hold`` / ``spawn`` / ``crash`` /
  ``restart`` / ``bench`` / ``retired`` / ``drain``) for tests,
  operators and the chaos benchmark.

The control loop is one synchronous :meth:`Supervisor.tick` over a
fixed table of worker *slots*, with every side effect behind an
injectable seam (``spawn``, ``advisory_fn``, ``clock``, ``rng``,
``emit``) — the unit suite drives years of fleet weather through it in
milliseconds with fake processes and a fake clock, while the chaos soak
and ``bench_chaos.py`` run it over real SIGKILLed subprocesses.

Workers are crash-safe by construction (leases + reaper + idempotent
results), so the supervisor never second-guesses the protocol: it only
manages *processes*, and the queue's own machinery guarantees no task
is lost or double-counted across any interleaving of kills, restarts
and retirements.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.runtime import janitor
from repro.runtime.queue import StoreLike
from repro.runtime.resilience import (
    BackoffPolicy,
    RestartBudget,
    TRANSIENT,
    classify_outage,
    decorrelated_jitter,
)
from repro.runtime.store import QueueStore, STORE_ENV, resolve_store

#: default restart backoff: fast first respawn, bounded stampede ceiling
DEFAULT_RESTART_BACKOFF = BackoffPolicy(base_delay_s=0.5, max_delay_s=15.0,
                                        multiplier=3.0, max_attempts=1)

#: default minimum seconds between scaling actions (not restarts)
DEFAULT_COOLDOWN_S = 5.0


def open_event_sink(path: Optional[str] = None):
    """Return a writable handle for the supervisor's JSON event stream.

    ``None`` or ``"-"`` selects stdout; anything else is opened for
    line-buffered append so a tailing ``jq`` sees each event as it
    lands.  The caller owns closing non-stdout handles.
    """
    if path in (None, "-"):
        return sys.stdout
    return open(path, "a", encoding="utf-8", buffering=1)


class _Slot:
    """One worker slot: a stable name plus the process lifecycle state."""

    def __init__(self, name: str, budget: RestartBudget) -> None:
        self.name = name
        self.proc = None                  # live process handle (or None)
        self.started_at: Optional[float] = None
        self.retiring = False             # SIGTERM sent, exit expected
        self.benched = False              # crash-loop budget exhausted
        self.restart_at: Optional[float] = None   # pending respawn time
        self.backoff_delay: Optional[float] = None
        self.budget = budget

    @property
    def running(self) -> bool:
        return self.proc is not None

    @property
    def pending_restart(self) -> bool:
        return self.restart_at is not None

    def clear(self) -> None:
        """Forget the exited process (slot becomes free or respawnable)."""
        self.proc = None
        self.started_at = None
        self.retiring = False


class Supervisor:
    """Scale a local worker fleet to the queue's autoscale advisory.

    Parameters
    ----------
    root:
        Shared queue root the workers drain.
    store:
        Backend the fleet speaks: a registry name, a
        :class:`~repro.runtime.store.QueueStore` instance (its ``name``
        is exported), or ``None`` to inherit the environment's
        ``REPRO_RUNTIME_STORE``.  Spawned workers receive the name via
        their environment, so the whole fleet agrees.
    min_workers, max_workers, tasks_per_worker, hysteresis_tasks:
        The :func:`repro.runtime.janitor.desired_workers` policy knobs.
        ``max_workers`` also fixes the slot-table size.
    poll_interval_s:
        Seconds between control-loop ticks (advisory polls).
    cooldown_s:
        Minimum seconds between scaling *actions* — crash restarts are
        exempt (repair is not scaling).
    lease_s:
        Lease length handed to spawned workers (``None``: their env /
        default applies).
    worker_poll_interval_s:
        ``--poll-interval`` of spawned ``serve --watch`` workers.
    restart_backoff:
        Decorrelated-jitter schedule of crash respawns
        (:data:`DEFAULT_RESTART_BACKOFF` when ``None``; its
        ``max_attempts`` is ignored — the :class:`RestartBudget` owns
        give-up policy).
    max_restarts, restart_window_s:
        The per-slot crash-loop budget: ``max_restarts`` crashes inside
        a sliding ``restart_window_s`` bench the slot.  A worker that
        ran healthily for a full window redeems its history.
    seed:
        Seeds the restart-jitter stream (reproducible drills).
    emit:
        ``(event_dict) -> None`` sink of the JSON event stream.
    spawn:
        ``(slot_name) -> process`` override returning a Popen-alike
        (``poll`` / ``terminate`` / ``kill`` / ``pid``); the unit-test
        seam.  The default spawns a real ``serve --watch`` subprocess.
    advisory_fn:
        ``(current_workers) -> advisory dict`` override; defaults to
        :func:`repro.runtime.janitor.autoscale_advisory` over ``root``.
    clock:
        Monotonic time source (fake-clock seam).
    worker_env:
        Extra environment variables for spawned workers (on top of the
        inherited environment + the store export).
    """

    def __init__(self, root: str, *,
                 store: StoreLike = None,
                 min_workers: int = 0,
                 max_workers: int = 4,
                 tasks_per_worker: Optional[int] = None,
                 hysteresis_tasks: Optional[int] = None,
                 poll_interval_s: float = 0.5,
                 cooldown_s: float = DEFAULT_COOLDOWN_S,
                 lease_s: Optional[float] = None,
                 worker_poll_interval_s: float = 0.2,
                 restart_backoff: Optional[BackoffPolicy] = None,
                 max_restarts: int = 3,
                 restart_window_s: float = 60.0,
                 seed: int = 0,
                 emit: Optional[Callable[[Dict[str, object]], None]] = None,
                 spawn: Optional[Callable[[str], object]] = None,
                 advisory_fn: Optional[
                     Callable[[int], Dict[str, object]]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 worker_env: Optional[Dict[str, str]] = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                f"need 0 <= min_workers <= max_workers, got "
                f"{min_workers}..{max_workers}"
            )
        if poll_interval_s <= 0 or cooldown_s < 0:
            raise ValueError(
                "poll_interval_s must be positive and cooldown_s >= 0"
            )
        self.root = root
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.tasks_per_worker = tasks_per_worker
        self.hysteresis_tasks = hysteresis_tasks
        self.poll_interval_s = float(poll_interval_s)
        self.cooldown_s = float(cooldown_s)
        self.lease_s = None if lease_s is None else float(lease_s)
        self.worker_poll_interval_s = float(worker_poll_interval_s)
        self.restart_backoff = (DEFAULT_RESTART_BACKOFF
                                if restart_backoff is None
                                else restart_backoff)
        self.max_restarts = int(max_restarts)
        self.restart_window_s = float(restart_window_s)
        self.worker_env = dict(worker_env or {})
        self._store_name = self._resolve_store_name(store)
        self._store = store
        self._emit = emit
        self._spawn = spawn if spawn is not None else self._spawn_worker
        self._advisory_fn = (advisory_fn if advisory_fn is not None
                             else self._advisory)
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._slots = [
            _Slot(f"w{i}", RestartBudget(max_restarts=self.max_restarts,
                                         window_s=self.restart_window_s))
            for i in range(self.max_workers)
        ]
        self._cooldown_until = float("-inf")
        self._last_hold: Optional[tuple] = None
        self._last_advisory: Optional[Dict[str, object]] = None
        self._idle_since: Optional[float] = None
        self._stopped = False
        # counters feeding summary()
        self._restarts_total = 0
        self._crashes_total = 0
        self._spawned_total = 0

    # ------------------------------------------------------------------ #
    # defaults behind the injectable seams
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_store_name(store: StoreLike) -> Optional[str]:
        if store is None:
            return None
        if isinstance(store, QueueStore):
            return store.name
        return str(store)

    def _spawn_worker(self, slot_name: str):
        """Spawn one real ``serve --watch`` worker subprocess."""
        argv = [sys.executable, "-m", "repro.runtime.queue", self.root,
                "serve", "--watch",
                "--poll-interval", str(self.worker_poll_interval_s)]
        if self.lease_s is not None:
            argv += ["--lease-seconds", str(self.lease_s)]
        env = dict(os.environ)
        if self._store_name is not None:
            env[STORE_ENV] = self._store_name
        env.update(self.worker_env)
        return subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    def _advisory(self, current_workers: int) -> Dict[str, object]:
        """The janitor's advisory, anchored to *our* fleet size.

        The lease census undercounts the fleet (an idle worker holds no
        lease), so the supervisor feeds its own process table in as the
        hysteresis anchor.
        """
        return janitor.autoscale_advisory(
            self.root,
            tasks_per_worker=self.tasks_per_worker,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
            hysteresis_tasks=self.hysteresis_tasks,
            current_workers=current_workers,
            store=self._store,
        )

    # ------------------------------------------------------------------ #
    # event stream
    # ------------------------------------------------------------------ #
    def emit(self, event: str, **fields: object) -> None:
        """Emit one event dict to the configured sink (never raises)."""
        if self._emit is None:
            return
        record: Dict[str, object] = {"t": round(self._clock(), 3),
                                     "event": event}
        record.update(fields)
        try:
            self._emit(record)
        except Exception:
            pass  # a broken sink must never take the fleet down

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def worker_pids(self) -> List[int]:
        """PIDs of live (non-retiring) workers — the chaos killer's menu."""
        with self._lock:
            return [slot.proc.pid for slot in self._slots
                    if slot.running and not slot.retiring
                    and slot.proc.poll() is None]

    def capacity(self) -> int:
        """Workers the fleet counts on: running + pending crash respawns."""
        with self._lock:
            return self._capacity_locked()

    def _capacity_locked(self) -> int:
        return sum(1 for slot in self._slots
                   if (slot.running and not slot.retiring)
                   or slot.pending_restart)

    def benched(self) -> List[str]:
        """Names of slots whose crash-loop budget is exhausted."""
        with self._lock:
            return [slot.name for slot in self._slots if slot.benched]

    def summary(self) -> Dict[str, object]:
        """Machine-readable lifetime counters (printed at drain)."""
        with self._lock:
            return {
                "spawned": self._spawned_total,
                "crashes": self._crashes_total,
                "restarts": self._restarts_total,
                "benched": [s.name for s in self._slots if s.benched],
                "running": [s.name for s in self._slots
                            if s.running and not s.retiring],
            }

    # ------------------------------------------------------------------ #
    # the control loop
    # ------------------------------------------------------------------ #
    def tick(self, now: Optional[float] = None) -> None:
        """One control cycle: reap exits, respawn, poll advisory, scale."""
        with self._lock:
            current = self._clock() if now is None else now
            self._reap_exits(current)
            self._respawn_due(current)
            advisory = self._poll_advisory()
            if advisory is not None:
                self._last_advisory = advisory
                self._apply_advisory(advisory, current)
            self._track_idle(current)

    def _reap_exits(self, now: float) -> None:
        for slot in self._slots:
            if not slot.running:
                continue
            returncode = slot.proc.poll()
            if returncode is None:
                continue
            if slot.retiring:
                self.emit("retired", worker=slot.name,
                          returncode=returncode)
                slot.clear()
                slot.backoff_delay = None
                continue
            # an unexpected death: crash-loop accounting + backoff
            runtime_s = (0.0 if slot.started_at is None
                         else max(0.0, now - slot.started_at))
            if runtime_s >= self.restart_window_s:
                # a full healthy window redeems the slot's history
                slot.budget.reset()
                slot.backoff_delay = None
            within_budget = slot.budget.record(now)
            self._crashes_total += 1
            self.emit("crash", worker=slot.name, returncode=returncode,
                      runtime_s=round(runtime_s, 3),
                      crashes_in_window=slot.budget.crashes_in_window)
            slot.clear()
            if not within_budget:
                slot.benched = True
                self.emit("bench", worker=slot.name,
                          crashes_in_window=slot.budget.crashes_in_window,
                          window_s=self.restart_window_s)
                continue
            delay = decorrelated_jitter(self.restart_backoff,
                                        slot.backoff_delay, self._rng)
            slot.backoff_delay = delay
            slot.restart_at = now + delay

    def _respawn_due(self, now: float) -> None:
        for slot in self._slots:
            if slot.benched or not slot.pending_restart:
                continue
            if now < slot.restart_at:
                continue
            delay = slot.backoff_delay
            slot.restart_at = None
            if self._start(slot, now):
                self._restarts_total += 1
                self.emit("restart", worker=slot.name,
                          pid=getattr(slot.proc, "pid", None),
                          delay_s=round(delay or 0.0, 3))

    def _start(self, slot: _Slot, now: float) -> bool:
        """Spawn into a slot; a failed spawn re-enters the crash path."""
        try:
            slot.proc = self._spawn(slot.name)
        except Exception as error:
            if classify_outage(error) != TRANSIENT:
                raise
            within_budget = slot.budget.record(now)
            self._crashes_total += 1
            self.emit("spawn_error", worker=slot.name, error=repr(error),
                      crashes_in_window=slot.budget.crashes_in_window)
            if not within_budget:
                slot.benched = True
                self.emit("bench", worker=slot.name,
                          crashes_in_window=slot.budget.crashes_in_window,
                          window_s=self.restart_window_s)
                return False
            delay = decorrelated_jitter(self.restart_backoff,
                                        slot.backoff_delay, self._rng)
            slot.backoff_delay = delay
            slot.restart_at = now + delay
            return False
        slot.started_at = now
        slot.retiring = False
        self._spawned_total += 1
        return True

    def _poll_advisory(self) -> Optional[Dict[str, object]]:
        try:
            return self._advisory_fn(self._capacity_locked())
        except Exception as error:
            # a transient storage fault mid-census is survivable: hold
            # the fleet as-is and poll again next tick
            if classify_outage(error) != TRANSIENT:
                raise
            self.emit("advisory_error", error=repr(error))
            return None

    def _apply_advisory(self, advisory: Dict[str, object],
                        now: float) -> None:
        desired = int(advisory.get("desired_workers", 0))
        desired = max(self.min_workers, min(self.max_workers, desired))
        capacity = self._capacity_locked()
        if desired == capacity:
            self._emit_hold(desired, capacity, "fleet matches the backlog")
            return
        if now < self._cooldown_until:
            self._emit_hold(desired, capacity, "cooldown")
            return
        if desired > capacity:
            spawned = self._scale_up(desired - capacity, now)
            if spawned:
                self._cooldown_until = now + self.cooldown_s
                self._last_hold = None
                self.emit("scale_up", desired=desired, capacity=capacity,
                          spawned=spawned,
                          queue_depth=advisory.get("queue_depth"))
            else:
                self._emit_hold(desired, capacity, "no free slots")
        else:
            retired = self._scale_down(capacity - desired, now)
            if retired:
                self._cooldown_until = now + self.cooldown_s
                self._last_hold = None
                self.emit("scale_down", desired=desired, capacity=capacity,
                          retired=retired,
                          queue_depth=advisory.get("queue_depth"))

    def _emit_hold(self, desired: int, capacity: int, reason: str) -> None:
        # dedup consecutive identical holds: an idle daemon narrates a
        # steady state once, not twice a second forever
        key = (desired, capacity, reason)
        if key == self._last_hold:
            return
        self._last_hold = key
        self.emit("hold", desired=desired, capacity=capacity, reason=reason)

    def _scale_up(self, count: int, now: float) -> List[str]:
        spawned: List[str] = []
        for slot in self._slots:
            if len(spawned) >= count:
                break
            if (slot.running or slot.benched or slot.pending_restart):
                continue
            if self._start(slot, now):
                spawned.append(slot.name)
                self.emit("spawn", worker=slot.name,
                          pid=getattr(slot.proc, "pid", None))
        return spawned

    def _scale_down(self, count: int, now: float) -> List[str]:
        retired: List[str] = []
        # cancel pending respawns first — cheapest capacity to shed
        for slot in self._slots:
            if len(retired) >= count:
                return retired
            if slot.pending_restart:
                slot.restart_at = None
                slot.backoff_delay = None
                retired.append(slot.name)
        # then SIGTERM running workers, newest first (keep warm elders)
        running = [slot for slot in self._slots
                   if slot.running and not slot.retiring]
        running.sort(key=lambda s: s.started_at or 0.0, reverse=True)
        for slot in running:
            if len(retired) >= count:
                break
            self._terminate(slot)
            retired.append(slot.name)
        return retired

    @staticmethod
    def _terminate(slot: _Slot) -> None:
        slot.retiring = True
        try:
            slot.proc.terminate()
        except (OSError, ProcessLookupError):
            pass  # already gone; the next reap collects it

    def _track_idle(self, now: float) -> None:
        advisory = self._last_advisory or {}
        queue_empty = (int(advisory.get("queue_depth", 1)) == 0
                       and int(advisory.get("claimed", 1)) == 0)
        idle = (queue_empty and self._capacity_locked() == 0
                and self.min_workers == 0)
        if not idle:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now

    def idle_for(self, now: Optional[float] = None) -> float:
        """Seconds the fleet has sat scaled-to-zero over an empty queue."""
        with self._lock:
            if self._idle_since is None:
                return 0.0
            current = self._clock() if now is None else now
            return max(0.0, current - self._idle_since)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def run(self, stop: Optional[threading.Event] = None,
            idle_exit_s: Optional[float] = None) -> None:
        """Tick until ``stop`` is set (or idle-exit), then drain."""
        waiter = stop if stop is not None else threading.Event()
        try:
            while not waiter.is_set():
                self.tick()
                if (idle_exit_s is not None
                        and self.idle_for() >= idle_exit_s):
                    self.emit("idle_exit",
                              idle_s=round(self.idle_for(), 3))
                    break
                if waiter.wait(self.poll_interval_s):
                    break
        finally:
            self.shutdown()

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Drain the fleet: SIGTERM everyone, wait, then force-kill."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            draining = [slot for slot in self._slots if slot.running]
            for slot in self._slots:
                slot.restart_at = None
            for slot in draining:
                self._terminate(slot)
            self.emit("drain", workers=[slot.name for slot in draining])
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                live = [slot for slot in self._slots
                        if slot.running and slot.proc.poll() is None]
                for slot in self._slots:
                    if slot.running and slot.proc.poll() is not None:
                        self.emit("retired", worker=slot.name,
                                  returncode=slot.proc.poll())
                        slot.clear()
            if not live:
                break
            if time.monotonic() >= deadline:
                with self._lock:
                    for slot in live:
                        try:
                            slot.proc.kill()
                        except (OSError, ProcessLookupError):
                            pass
                        self.emit("killed", worker=slot.name)
                        slot.clear()
                break
            time.sleep(0.05)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Supervisor(root={self.root!r}, "
                f"workers={self.min_workers}..{self.max_workers}, "
                f"capacity={self.capacity()})")
