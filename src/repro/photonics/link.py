"""Optical link power budget for the oPCM crossbar read path.

A crossbar read only works if enough optical power survives the path
laser → comb → demux → VOA → mux → waveguide → oPCM cell → photodiode to be
resolved by the TIA/ADC against noise.  The link budget collects the losses
of that chain, divides the per-wavelength power across the crossbar rows and
checks the detected power per column against a receiver sensitivity — the
quantitative version of the paper's remark that WDM channels must "still be
detectable later (with acceptable noise in TIA)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.opcm import OPCMConfig
from repro.photonics.components import (
    Demux,
    Laser,
    MicroResonatorComb,
    Mux,
    Photodiode,
    VariableOpticalAttenuator,
    Waveguide,
    linear_to_db,
)
from repro.utils.units import uW
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OpticalLink:
    """Static description of one laser-to-photodiode optical path."""

    laser: Laser = field(default_factory=Laser)
    comb: MicroResonatorComb = field(default_factory=MicroResonatorComb)
    demux: Demux = field(default_factory=Demux)
    voa: VariableOpticalAttenuator = field(default_factory=VariableOpticalAttenuator)
    mux: Mux = field(default_factory=Mux)
    waveguide: Waveguide = field(default_factory=Waveguide)
    device: OPCMConfig = field(default_factory=OPCMConfig)
    photodiode: Photodiode = field(default_factory=Photodiode)
    receiver_sensitivity_w: float = 0.05 * uW

    def __post_init__(self) -> None:
        check_positive("receiver_sensitivity_w", self.receiver_sensitivity_w)


@dataclass(frozen=True)
class LinkBudget:
    """Resolved power budget of an optical link through the crossbar."""

    per_wavelength_launch_w: float
    path_loss_db: float
    detected_power_w: float
    receiver_sensitivity_w: float
    margin_db: float

    @property
    def closes(self) -> bool:
        """True when the detected power exceeds the receiver sensitivity."""
        return self.margin_db >= 0.0


def evaluate_link_budget(link: OpticalLink, *, num_rows: int,
                         wdm_capacity: int) -> LinkBudget:
    """Evaluate the worst-case link budget of one crossbar column.

    The pessimistic path assumes the input bit and the stored weight bit are
    both 1 on only a single row (minimum accumulated power that must still be
    distinguishable from zero), the cell is in its transparent state, and the
    signal crosses every passive element once.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    if wdm_capacity < 1:
        raise ValueError("wdm_capacity must be >= 1")
    comb = MicroResonatorComb(
        num_lines=wdm_capacity,
        line_spacing_nm=link.comb.line_spacing_nm,
        conversion_efficiency=link.comb.conversion_efficiency,
        tuning_power=link.comb.tuning_power,
    )
    lines = comb.generate(link.laser.emit())
    per_wavelength = next(iter(lines.values()))
    # the per-wavelength power is shared across the crossbar rows
    per_row_launch = per_wavelength / num_rows

    passive_loss_db = (
        link.demux.insertion_loss_db
        + link.voa.insertion_loss_db
        + link.mux.insertion_loss_db
        + link.waveguide.total_loss_db
        + link.device.insertion_loss_db
    )
    transmission_loss_db = linear_to_db(link.device.t_high)
    path_loss_db = passive_loss_db + transmission_loss_db

    detected = per_row_launch * 10.0 ** (-path_loss_db / 10.0)
    margin_db = 10.0 * np.log10(
        max(detected, 1e-30) / link.receiver_sensitivity_w
    )
    return LinkBudget(
        per_wavelength_launch_w=per_wavelength,
        path_loss_db=path_loss_db,
        detected_power_w=detected,
        receiver_sensitivity_w=link.receiver_sensitivity_w,
        margin_db=margin_db,
    )


def max_rows_for_closure(link: OpticalLink, *, wdm_capacity: int,
                         max_rows: int = 4096) -> int:
    """Largest crossbar row count whose link budget still closes.

    Used by the design-space-exploration ablation to show how optical power
    (not just electrical periphery) bounds the usable crossbar height.
    """
    best = 0
    rows = 1
    while rows <= max_rows:
        if evaluate_link_budget(link, num_rows=rows, wdm_capacity=wdm_capacity).closes:
            best = rows
            rows *= 2
        else:
            break
    if best == 0:
        return 0
    # refine between best and 2*best with a binary search
    low, high = best, min(best * 2, max_rows)
    while low < high:
        middle = (low + high + 1) // 2
        if evaluate_link_budget(
            link, num_rows=middle, wdm_capacity=wdm_capacity
        ).closes:
            low = middle
        else:
            high = middle - 1
    return low
