"""Photonic substrate for EinsteinBarrier's oPCM ECores.

Models the optical components of Fig. 6 (laser, microresonator frequency
comb, MUX/DMUX, variable optical attenuators), the wavelength-division
multiplexing channel plan that gives EinsteinBarrier its extra parallelism
dimension, the receiver chain (photodiode + transimpedance amplifier), the
optical link power budget, and the closed-form power-overhead equations the
paper uses (Eq. 2 and Eq. 3).
"""

from repro.photonics.components import (
    Laser,
    MicroResonatorComb,
    Mux,
    Demux,
    Photodiode,
    TransimpedanceAmplifier,
    VariableOpticalAttenuator,
    Waveguide,
)
from repro.photonics.link import LinkBudget, OpticalLink
from repro.photonics.power import (
    crossbar_receiver_power,
    transmitter_power,
    total_optical_overhead_power,
)
from repro.photonics.transmitter import Transmitter, TransmitterConfig
from repro.photonics.wdm import WDMChannelPlan, WDMConfig

__all__ = [
    "Laser",
    "MicroResonatorComb",
    "Mux",
    "Demux",
    "Photodiode",
    "TransimpedanceAmplifier",
    "VariableOpticalAttenuator",
    "Waveguide",
    "LinkBudget",
    "OpticalLink",
    "crossbar_receiver_power",
    "transmitter_power",
    "total_optical_overhead_power",
    "Transmitter",
    "TransmitterConfig",
    "WDMChannelPlan",
    "WDMConfig",
]
