"""Closed-form power-overhead model of the oPCM ECore (Eq. 2 and Eq. 3).

Section IV-B of the paper quantifies what the extra WDM parallelism costs:

* **Eq. 2** — receiver overhead of one crossbar: ``P_crossbar = N × 2 mW``
  where ``N`` is the number of columns (one TIA per column at 2 mW).

* **Eq. 3** — transmitter overhead:
  ``P_total = P_laser + 3·K·M [mW] + 3·(K·M + 1)/k × 45 [mW]``
  where ``K`` is the WDM capacity, ``M`` the number of crossbar rows driven,
  the 3 mW term is the per-modulator drive power, the 45 mW term is the
  thermal tuning of a resonator group, and ``k`` is the number of modulators
  sharing one tuning block (the paper reuses the symbol; we expose it as
  ``tuning_group_size`` and default it to ``K``).

These functions are used by the EinsteinBarrier energy model and are swept
directly by ``benchmarks/bench_power_model.py``.
"""

from __future__ import annotations

from repro.utils.units import mW

#: per-TIA receiver power (Eq. 2)
TIA_POWER_W = 2.0 * mW
#: per-modulator (VOA) drive power (Eq. 3, "3 × KM mW" term)
MODULATOR_POWER_W = 3.0 * mW
#: per-tuning-block power (Eq. 3, "× 45 mW" term)
TUNING_BLOCK_POWER_W = 45.0 * mW
#: default laser electrical power used when none is specified
DEFAULT_LASER_POWER_W = 50.0 * mW


def crossbar_receiver_power(num_columns: int, *,
                            tia_power: float = TIA_POWER_W) -> float:
    """Receiver power overhead of one crossbar (Eq. 2), in watts.

    Parameters
    ----------
    num_columns:
        ``N`` — number of crossbar columns, each terminated by one TIA.
    tia_power:
        Power of a single TIA (2 mW by default, per the paper).
    """
    if num_columns < 0:
        raise ValueError("num_columns must be non-negative")
    if tia_power < 0:
        raise ValueError("tia_power must be non-negative")
    return num_columns * tia_power


def transmitter_power(wdm_capacity: int, num_rows: int, *,
                      laser_power: float = DEFAULT_LASER_POWER_W,
                      tuning_group_size: int | None = None,
                      modulator_power: float = MODULATOR_POWER_W,
                      tuning_block_power: float = TUNING_BLOCK_POWER_W) -> float:
    """Transmitter power overhead (Eq. 3), in watts.

    Parameters
    ----------
    wdm_capacity:
        ``K`` — number of wavelengths combined per activation.
    num_rows:
        ``M`` — number of crossbar rows driven by the transmitter.
    laser_power:
        ``P_laser`` — electrical power of the pump laser.
    tuning_group_size:
        ``k`` — modulators per shared tuning block; defaults to ``K``.
    modulator_power, tuning_block_power:
        The 3 mW and 45 mW constants of Eq. 3, exposed for sweeps.
    """
    if wdm_capacity < 1:
        raise ValueError("wdm_capacity must be >= 1")
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    if laser_power < 0:
        raise ValueError("laser_power must be non-negative")
    group = wdm_capacity if tuning_group_size is None else tuning_group_size
    if group < 1:
        raise ValueError("tuning_group_size must be >= 1")
    km = wdm_capacity * num_rows
    modulators = km * modulator_power
    tuning = (km + 1) / group * tuning_block_power
    return laser_power + modulators + tuning


def total_optical_overhead_power(wdm_capacity: int, num_rows: int,
                                 num_columns: int, *,
                                 laser_power: float = DEFAULT_LASER_POWER_W,
                                 tuning_group_size: int | None = None) -> float:
    """Combined transmitter + receiver overhead of one oPCM core, in watts."""
    return transmitter_power(
        wdm_capacity, num_rows, laser_power=laser_power,
        tuning_group_size=tuning_group_size,
    ) + crossbar_receiver_power(num_columns)
