"""Wavelength-division multiplexing (WDM) channel plan and capacity model.

WDM is the extra parallelism dimension that separates EinsteinBarrier from
TacitMap-ePCM: up to *K* activation vectors ride on *K* distinct wavelengths
through the same crossbar in a single time step (Fig. 5-(b)).  The paper
states that current technology supports a capacity of K = 16 wavelengths
whose combined signal is still separable at the receiver with acceptable TIA
noise (Sec. IV-A2).

The :class:`WDMChannelPlan` assigns wavelengths on an ITU-like fixed grid,
models inter-channel crosstalk as a function of channel spacing, and exposes
the *effective* capacity — the largest number of channels whose worst-case
crosstalk stays below a detection margin, which is how the "still detectable
later" clause of the paper is made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.validation import check_positive

#: WDM capacity supported by current technology according to the paper
PAPER_WDM_CAPACITY = 16


@dataclass(frozen=True)
class WDMConfig:
    """Parameters of the WDM channel plan.

    Attributes
    ----------
    capacity:
        Number of usable wavelengths K.
    centre_wavelength_nm:
        Centre of the channel grid.
    channel_spacing_nm:
        Spacing between adjacent channels.
    crosstalk_floor_db:
        Crosstalk between adjacent channels (negative-coupling expressed as a
        positive isolation value in dB; larger is better).
    crosstalk_rolloff_db_per_channel:
        Additional isolation gained per channel of separation.
    detection_margin_db:
        Minimum aggregate-crosstalk isolation the receiver needs to still
        resolve each channel ("detectable with acceptable noise in TIA").
    """

    capacity: int = PAPER_WDM_CAPACITY
    centre_wavelength_nm: float = 1550.0
    channel_spacing_nm: float = 0.8
    crosstalk_floor_db: float = 25.0
    crosstalk_rolloff_db_per_channel: float = 5.0
    detection_margin_db: float = 12.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        check_positive("centre_wavelength_nm", self.centre_wavelength_nm)
        check_positive("channel_spacing_nm", self.channel_spacing_nm)
        check_positive("crosstalk_floor_db", self.crosstalk_floor_db)
        check_positive("crosstalk_rolloff_db_per_channel",
                       self.crosstalk_rolloff_db_per_channel, allow_zero=True)
        check_positive("detection_margin_db", self.detection_margin_db)


class WDMChannelPlan:
    """Concrete wavelength assignment plus crosstalk bookkeeping."""

    def __init__(self, config: WDMConfig | None = None) -> None:
        self.config = config if config is not None else WDMConfig()

    # ------------------------------------------------------------------ #
    # Channel grid
    # ------------------------------------------------------------------ #
    def wavelengths(self, count: int | None = None) -> List[float]:
        """Return ``count`` channel wavelengths centred on the grid centre."""
        count = self.config.capacity if count is None else count
        if count < 1 or count > self.config.capacity:
            raise ValueError(
                f"count must be in [1, {self.config.capacity}], got {count}"
            )
        offset = -(count - 1) / 2.0
        return [
            round(
                self.config.centre_wavelength_nm
                + (offset + i) * self.config.channel_spacing_nm,
                4,
            )
            for i in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Crosstalk model
    # ------------------------------------------------------------------ #
    def isolation_db(self, channel_distance: int) -> float:
        """Isolation between two channels ``channel_distance`` slots apart."""
        if channel_distance < 1:
            raise ValueError("channel_distance must be >= 1")
        return (
            self.config.crosstalk_floor_db
            + (channel_distance - 1) * self.config.crosstalk_rolloff_db_per_channel
        )

    def aggregate_crosstalk_db(self, num_channels: int) -> float:
        """Worst-case aggregate crosstalk seen by one channel, in dB.

        The victim channel collects leakage from every other active channel;
        leakages add in linear power before being converted back to dB.
        """
        if num_channels < 1 or num_channels > self.config.capacity:
            raise ValueError(
                f"num_channels must be in [1, {self.config.capacity}]"
            )
        if num_channels == 1:
            return float("inf")
        leak = 0.0
        for distance in range(1, num_channels):
            leak += 10.0 ** (-self.isolation_db(distance) / 10.0)
        return -10.0 * np.log10(leak)

    def effective_capacity(self) -> int:
        """Largest channel count whose aggregate crosstalk meets the margin."""
        usable = 1
        for count in range(2, self.config.capacity + 1):
            if self.aggregate_crosstalk_db(count) >= self.config.detection_margin_db:
                usable = count
            else:
                break
        return usable

    def channels_per_activation(self, pending_vectors: int) -> int:
        """How many of ``pending_vectors`` ride in one crossbar activation."""
        if pending_vectors < 0:
            raise ValueError("pending_vectors must be non-negative")
        return min(pending_vectors, self.effective_capacity())
