"""Transmitter assembly (Fig. 6): laser → comb → DMUX → VOAs → MUX.

The transmitter takes up to K binary activation vectors (each of length M,
one bit per crossbar row) and produces, for every crossbar row, a WDM signal
whose wavelength λ_k carries bit ``vectors[k][row]``.  Feeding those row
signals into the oPCM crossbar realises the Matrix-Matrix Multiplication of
Sec. IV-A2: every column accumulates, per wavelength, the product of that
wavelength's input vector with the stored column — K VMMs in one activation.

Besides the functional encoding, the transmitter reports its electrical
power, which is what Eq. 3 summarises in closed form (laser + modulators +
tuning); :func:`repro.photonics.power.transmitter_power` implements the
closed form and the tests assert both agree on the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.photonics.components import (
    Demux,
    Laser,
    MicroResonatorComb,
    Mux,
    OpticalSignal,
    VariableOpticalAttenuator,
)
from repro.photonics.wdm import WDMChannelPlan, WDMConfig
from repro.utils.validation import check_binary


@dataclass(frozen=True)
class TransmitterConfig:
    """Static configuration of the WDM transmitter.

    Attributes
    ----------
    num_rows:
        Number of crossbar rows M the transmitter drives (one VOA per row per
        wavelength).
    wdm:
        WDM channel plan configuration (capacity K, spacing, crosstalk).
    laser, comb, demux, mux, voa:
        Component models; defaults follow Fig. 6 and the power constants the
        paper uses in Eq. 3 (3 mW per modulator, 45 mW tuning blocks).
    """

    num_rows: int = 256
    wdm: WDMConfig = field(default_factory=WDMConfig)
    laser: Laser = field(default_factory=Laser)
    comb: MicroResonatorComb = field(default_factory=lambda: MicroResonatorComb())
    demux: Demux = field(default_factory=Demux)
    mux: Mux = field(default_factory=Mux)
    voa: VariableOpticalAttenuator = field(default_factory=VariableOpticalAttenuator)

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError("num_rows must be >= 1")


class Transmitter:
    """Functional + power model of the EinsteinBarrier transmitter."""

    def __init__(self, config: TransmitterConfig | None = None) -> None:
        self.config = config if config is not None else TransmitterConfig()
        # align the comb with the WDM plan so the wavelengths coincide
        wdm = self.config.wdm
        comb = MicroResonatorComb(
            num_lines=wdm.capacity,
            line_spacing_nm=wdm.channel_spacing_nm,
            conversion_efficiency=self.config.comb.conversion_efficiency,
            tuning_power=self.config.comb.tuning_power,
        )
        self._comb = comb
        self._plan = WDMChannelPlan(wdm)

    # ------------------------------------------------------------------ #
    # Functional path
    # ------------------------------------------------------------------ #
    def carrier_lines(self) -> OpticalSignal:
        """The comb lines available for modulation."""
        return self._comb.generate(self.config.laser.emit())

    def encode(self, vectors: Sequence[np.ndarray] | np.ndarray) -> List[OpticalSignal]:
        """Encode up to K binary vectors into per-row WDM signals.

        Parameters
        ----------
        vectors:
            Array-like of shape ``(k, num_rows)`` with binary entries; vector
            ``i`` is assigned to wavelength ``i``.

        Returns
        -------
        list of OpticalSignal
            One WDM signal per crossbar row; row ``r``'s signal carries, on
            wavelength ``i``, power proportional to ``vectors[i][r]``.
        """
        matrix = check_binary("vectors", np.atleast_2d(np.asarray(vectors)))
        num_vectors, num_rows = matrix.shape
        capacity = self._plan.effective_capacity()
        if num_vectors > capacity:
            raise ValueError(
                f"{num_vectors} vectors exceed the effective WDM capacity {capacity}"
            )
        if num_rows != self.config.num_rows:
            raise ValueError(
                f"vectors have length {num_rows}, transmitter drives "
                f"{self.config.num_rows} rows"
            )
        lines = self.carrier_lines()
        per_channel = self.config.demux.split(lines)
        wavelengths = sorted(per_channel)[:num_vectors]
        row_signals: List[OpticalSignal] = []
        for row in range(num_rows):
            modulated = []
            for vector_index, wavelength in enumerate(wavelengths):
                carrier = per_channel[wavelength]
                modulated.append(
                    self.config.voa.modulate(carrier, int(matrix[vector_index, row]))
                )
            row_signals.append(self.config.mux.combine(modulated))
        return row_signals

    def decode_reference(self, row_signals: Sequence[OpticalSignal],
                         wavelength: float) -> np.ndarray:
        """Recover the bit pattern carried on ``wavelength`` (test helper).

        Uses a mid-scale threshold on the per-row power of the chosen
        wavelength; mirrors what an ideal receiver-side demux would see.
        """
        powers = np.array([signal.get(wavelength, 0.0) for signal in row_signals])
        if powers.size == 0:
            raise ValueError("row_signals must not be empty")
        threshold = powers.max() / 2.0 if powers.max() > 0 else 0.0
        return (powers > threshold).astype(np.int8)

    # ------------------------------------------------------------------ #
    # Power accounting
    # ------------------------------------------------------------------ #
    def electrical_power(self, active_wavelengths: int | None = None) -> float:
        """Total electrical power of the transmitter in watts.

        Sums the laser wall-plug power, one VOA drive per (row, wavelength)
        pair, and one comb/ring tuning block per wavelength group — the
        structural counterpart of Eq. 3.
        """
        k = (
            self._plan.effective_capacity()
            if active_wavelengths is None
            else active_wavelengths
        )
        if k < 1 or k > self.config.wdm.capacity:
            raise ValueError(
                f"active_wavelengths must be in [1, {self.config.wdm.capacity}]"
            )
        modulator_power = k * self.config.num_rows * self.config.voa.drive_power
        tuning_blocks = (k * self.config.num_rows + 1) / max(k, 1)
        tuning_power = tuning_blocks * self._comb.tuning_power
        return self.config.laser.electrical_power + modulator_power + tuning_power
