"""Behavioural models of the photonic components in the transmitter/receiver.

Fig. 6 of the paper lists the transmitter's four main components: (1) a
continuous-wave laser, (2) a microresonator-based optical frequency comb that
spawns the WDM wavelengths, (3) DMUX/MUX stages that route individual
wavelengths to their modulators and recombine them, and (4) variable optical
attenuators (VOAs) that amplitude-encode each input bit onto its wavelength.
On the receive side each crossbar column terminates in a photodiode followed
by a transimpedance amplifier (TIA) that feeds the column ADC (Sec. IV-A1).

All components share a simple convention: optical signals are dictionaries of
``{wavelength_nm: power_w}`` and each component transforms powers (insertion
loss, attenuation, responsivity) while reporting its electrical power draw
for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.utils.units import mW
from repro.utils.validation import check_positive, check_probability

OpticalSignal = Dict[float, float]


def db_to_linear(loss_db: float) -> float:
    """Convert a loss in dB to a linear transmission factor."""
    return 10.0 ** (-loss_db / 10.0)


def linear_to_db(transmission: float) -> float:
    """Convert a linear transmission factor to a loss in dB."""
    if transmission <= 0:
        raise ValueError("transmission must be positive to express in dB")
    return -10.0 * np.log10(transmission)


@dataclass(frozen=True)
class Laser:
    """Continuous-wave pump laser.

    Attributes
    ----------
    output_power:
        Optical output power in watts.
    wall_plug_efficiency:
        Fraction of electrical power converted into light.
    wavelength_nm:
        Centre wavelength of the emitted carrier.
    """

    output_power: float = 10.0 * mW
    wall_plug_efficiency: float = 0.2
    wavelength_nm: float = 1550.0

    def __post_init__(self) -> None:
        check_positive("output_power", self.output_power)
        check_probability("wall_plug_efficiency", self.wall_plug_efficiency)
        if self.wall_plug_efficiency == 0:
            raise ValueError("wall_plug_efficiency must be > 0")
        check_positive("wavelength_nm", self.wavelength_nm)

    @property
    def electrical_power(self) -> float:
        """Electrical power drawn by the laser in watts."""
        return self.output_power / self.wall_plug_efficiency

    def emit(self) -> OpticalSignal:
        """Emit the single-wavelength continuous wave."""
        return {self.wavelength_nm: self.output_power}


@dataclass(frozen=True)
class MicroResonatorComb:
    """Kerr microresonator frequency comb.

    Converts a single pump line into ``num_lines`` equally spaced comb lines
    (the WDM carriers), with a conversion efficiency spread across lines.
    """

    num_lines: int = 16
    line_spacing_nm: float = 0.8
    conversion_efficiency: float = 0.30
    tuning_power: float = 45.0 * mW

    def __post_init__(self) -> None:
        if self.num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        check_positive("line_spacing_nm", self.line_spacing_nm)
        check_probability("conversion_efficiency", self.conversion_efficiency)
        if self.conversion_efficiency == 0:
            raise ValueError("conversion_efficiency must be > 0")
        check_positive("tuning_power", self.tuning_power, allow_zero=True)

    def generate(self, pump: OpticalSignal) -> OpticalSignal:
        """Split the pump into comb lines centred on the pump wavelength."""
        if len(pump) != 1:
            raise ValueError("the comb expects a single-wavelength pump")
        (pump_wavelength, pump_power), = pump.items()
        per_line = pump_power * self.conversion_efficiency / self.num_lines
        offset = -(self.num_lines - 1) / 2.0
        return {
            round(pump_wavelength + (offset + i) * self.line_spacing_nm, 4): per_line
            for i in range(self.num_lines)
        }

    @property
    def electrical_power(self) -> float:
        """Thermal tuning power keeping the resonator on resonance."""
        return self.tuning_power


@dataclass(frozen=True)
class Demux:
    """Wavelength demultiplexer: splits a WDM signal into per-channel paths."""

    insertion_loss_db: float = 1.0

    def __post_init__(self) -> None:
        check_positive("insertion_loss_db", self.insertion_loss_db, allow_zero=True)

    def split(self, signal: Mapping[float, float]) -> Dict[float, OpticalSignal]:
        """Return one single-wavelength signal per input channel."""
        factor = db_to_linear(self.insertion_loss_db)
        return {
            wavelength: {wavelength: power * factor}
            for wavelength, power in signal.items()
        }


@dataclass(frozen=True)
class Mux:
    """Wavelength multiplexer: merges per-channel paths into one WDM signal."""

    insertion_loss_db: float = 1.0

    def __post_init__(self) -> None:
        check_positive("insertion_loss_db", self.insertion_loss_db, allow_zero=True)

    def combine(self, signals: Iterable[Mapping[float, float]]) -> OpticalSignal:
        """Merge several signals; overlapping wavelengths are rejected."""
        factor = db_to_linear(self.insertion_loss_db)
        combined: OpticalSignal = {}
        for signal in signals:
            for wavelength, power in signal.items():
                if wavelength in combined:
                    raise ValueError(
                        f"wavelength {wavelength} nm appears in more than one input"
                    )
                combined[wavelength] = power * factor
        return combined


@dataclass(frozen=True)
class VariableOpticalAttenuator:
    """Amplitude modulator encoding one input bit onto one wavelength.

    A bit value of 1 lets the carrier through (minus insertion loss); a bit
    value of 0 attenuates it by the extinction ratio.
    """

    insertion_loss_db: float = 0.5
    extinction_ratio_db: float = 20.0
    drive_power: float = 3.0 * mW

    def __post_init__(self) -> None:
        check_positive("insertion_loss_db", self.insertion_loss_db, allow_zero=True)
        check_positive("extinction_ratio_db", self.extinction_ratio_db)
        check_positive("drive_power", self.drive_power, allow_zero=True)

    def modulate(self, signal: Mapping[float, float], bit: int) -> OpticalSignal:
        """Encode ``bit`` onto the (single-wavelength) carrier."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if len(signal) != 1:
            raise ValueError("a VOA modulates exactly one wavelength")
        loss = db_to_linear(self.insertion_loss_db)
        if bit == 0:
            loss *= db_to_linear(self.extinction_ratio_db)
        return {
            wavelength: power * loss for wavelength, power in signal.items()
        }

    @property
    def electrical_power(self) -> float:
        """Electrical drive/tuning power of the attenuator in watts."""
        return self.drive_power


@dataclass(frozen=True)
class Waveguide:
    """Passive silicon waveguide with propagation loss."""

    length_mm: float = 1.0
    loss_db_per_cm: float = 2.0

    def __post_init__(self) -> None:
        check_positive("length_mm", self.length_mm, allow_zero=True)
        check_positive("loss_db_per_cm", self.loss_db_per_cm, allow_zero=True)

    @property
    def total_loss_db(self) -> float:
        """End-to-end propagation loss in dB."""
        return self.loss_db_per_cm * self.length_mm / 10.0

    def propagate(self, signal: Mapping[float, float]) -> OpticalSignal:
        """Attenuate every channel by the propagation loss."""
        factor = db_to_linear(self.total_loss_db)
        return {w: p * factor for w, p in signal.items()}


@dataclass(frozen=True)
class Photodiode:
    """Photodetector converting optical power to photocurrent."""

    responsivity_a_per_w: float = 1.0
    dark_current_a: float = 10e-9

    def __post_init__(self) -> None:
        check_positive("responsivity_a_per_w", self.responsivity_a_per_w)
        check_positive("dark_current_a", self.dark_current_a, allow_zero=True)

    def detect(self, signal: Mapping[float, float]) -> float:
        """Total photocurrent produced by all incident wavelengths, in amperes."""
        total_power = sum(signal.values())
        return self.responsivity_a_per_w * total_power + self.dark_current_a


@dataclass(frozen=True)
class TransimpedanceAmplifier:
    """TIA converting the photocurrent into a voltage for the column ADC.

    EinsteinBarrier adds one TIA per crossbar column output (Sec. IV-A1);
    each consumes 2 mW (the constant of Eq. 2).
    """

    gain_ohm: float = 10e3
    power: float = 2.0 * mW

    def __post_init__(self) -> None:
        check_positive("gain_ohm", self.gain_ohm)
        check_positive("power", self.power)

    def amplify(self, current_a: float) -> float:
        """Output voltage for a given photocurrent."""
        if current_a < 0:
            raise ValueError("photocurrent must be non-negative")
        return current_a * self.gain_ohm
