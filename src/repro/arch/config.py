"""Accelerator configurations for the three evaluated designs.

Section V-B of the paper evaluates:

* **Baseline-ePCM** — the SotA CIM accelerator for BNNs (Hirtzlin et al.):
  CustBinaryMap on 2T2R ePCM crossbars, PCSA read-out, digital popcount.
* **TacitMap-ePCM** — the proposed mapping on the *same* ePCM crossbars and
  the same PCM configuration, but 1T1R cells read through column ADCs.
* **EinsteinBarrier** — TacitMap on oPCM VCores with WDM (K = 16), photonic
  transmitter/receiver, and the same digital periphery.

The factory functions below build those three configurations with defaults
drawn from the public literature the paper cites (PUMA-class digital units,
MNEMOSENE-class ePCM timing, Feldmann-class photonic rates).  Every constant
is a dataclass field so the ablation benchmarks can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.mapping_base import TileShape
from repro.crossbar.adc import ADCConfig
from repro.crossbar.tile import TileConfig
from repro.devices.opcm import OPCMConfig
from repro.devices.pcm import EPCMConfig
from repro.utils.units import GHz, pJ
from repro.utils.validation import check_positive

Mapping = Literal["tacitmap", "custbinarymap"]
Technology = Literal["epcm", "opcm"]


@dataclass(frozen=True)
class DigitalUnitConfig:
    """Digital scalar/vector unit executing the non-binary layers.

    The first and last layers of every evaluated BNN stay in higher precision
    (Sec. II-B) and run on the ECore's functional units for *all three*
    designs, so this block is shared and mostly cancels in the ratios — but
    it creates the Amdahl floor that makes the speedups network-dependent.
    """

    clock_hz: float = 1.0 * GHz
    macs_per_cycle: int = 1024
    energy_per_mac: float = 1.0 * pJ
    energy_per_add: float = 0.05 * pJ
    add_latency_cycles: int = 1

    def __post_init__(self) -> None:
        check_positive("clock_hz", self.clock_hz)
        if self.macs_per_cycle < 1:
            raise ValueError("macs_per_cycle must be >= 1")
        check_positive("energy_per_mac", self.energy_per_mac, allow_zero=True)
        check_positive("energy_per_add", self.energy_per_add, allow_zero=True)
        if self.add_latency_cycles < 0:
            raise ValueError("add_latency_cycles must be non-negative")

    @property
    def macs_per_second(self) -> float:
        """Peak MAC throughput of the digital unit."""
        return self.clock_hz * self.macs_per_cycle


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip network moving activations between layers/cores."""

    bandwidth_bytes_per_s: float = 128e9
    energy_per_byte: float = 1.0 * pJ
    hop_latency: float = 50e-9

    def __post_init__(self) -> None:
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_positive("energy_per_byte", self.energy_per_byte, allow_zero=True)
        check_positive("hop_latency", self.hop_latency, allow_zero=True)


@dataclass(frozen=True)
class AcceleratorConfig:
    """Complete configuration of one evaluated accelerator design."""

    name: str
    mapping: Mapping
    technology: Technology
    tile: TileConfig
    wdm_capacity: int = 1
    digital: DigitalUnitConfig = field(default_factory=DigitalUnitConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    #: spatial hierarchy sizing (VCores per ECore, ECores per Tile, Tiles per Node)
    vcores_per_ecore: int = 8
    ecores_per_tile: int = 8
    tiles_per_node: int = 8
    #: activation bit width used for inter-layer data movement accounting
    activation_bits: int = 1
    #: bit width of the non-binary first/last layer activations
    full_precision_bits: int = 8
    #: laser electrical power of the photonic transmitter (W, oPCM only)
    laser_power_w: float = 0.05

    def __post_init__(self) -> None:
        if self.mapping not in ("tacitmap", "custbinarymap"):
            raise ValueError("mapping must be 'tacitmap' or 'custbinarymap'")
        if self.technology not in ("epcm", "opcm"):
            raise ValueError("technology must be 'epcm' or 'opcm'")
        if self.wdm_capacity < 1:
            raise ValueError("wdm_capacity must be >= 1")
        if self.technology == "epcm" and self.wdm_capacity != 1:
            raise ValueError("WDM requires oPCM technology")
        if self.mapping == "custbinarymap" and self.wdm_capacity != 1:
            raise ValueError("the baseline mapping does not support WDM")
        for attribute in ("vcores_per_ecore", "ecores_per_tile", "tiles_per_node"):
            if getattr(self, attribute) < 1:
                raise ValueError(f"{attribute} must be >= 1")
        if self.activation_bits < 1 or self.full_precision_bits < 1:
            raise ValueError("bit widths must be >= 1")
        check_positive("laser_power_w", self.laser_power_w, allow_zero=True)

    @property
    def tile_shape(self) -> TileShape:
        """Logical tile shape used by the mapping/scheduling layer."""
        return TileShape(rows=self.tile.rows, cols=self.tile.cols)

    def with_overrides(self, **kwargs) -> "AcceleratorConfig":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


def baseline_epcm_config(*, crossbar_size: int = 256) -> AcceleratorConfig:
    """The SotA baseline: CustBinaryMap on 2T2R ePCM crossbars with PCSAs."""
    tile = TileConfig(
        rows=crossbar_size,
        cols=crossbar_size,
        technology="epcm",
        readout="pcsa",
        columns_per_adc=1,
        wdm_capacity=1,
        device_config=EPCMConfig(),
    )
    return AcceleratorConfig(
        name="Baseline-ePCM",
        mapping="custbinarymap",
        technology="epcm",
        tile=tile,
        wdm_capacity=1,
    )


def tacitmap_epcm_config(*, crossbar_size: int = 256,
                         columns_per_adc: int = 8,
                         vcores_per_ecore: int = 8,
                         ecores_per_tile: int = 8,
                         tiles_per_node: int = 8) -> AcceleratorConfig:
    """TacitMap on electronic PCM crossbars (same PCM as the baseline).

    The VCore/ECore/Tile hierarchy sizing is exposed so the design-space
    sweeps can treat provisioning (nodes required, utilisation, static
    power) as first-class axes; the defaults are the paper's 8/8/8 node.
    """
    tile = TileConfig(
        rows=crossbar_size,
        cols=crossbar_size,
        technology="epcm",
        readout="adc",
        columns_per_adc=columns_per_adc,
        wdm_capacity=1,
        device_config=EPCMConfig(),
        # fast 8-bit SAR sized for full-column popcount read-out; its energy
        # is the "power-hungry ADC" the paper blames for TacitMap-ePCM's
        # higher energy (Sec. VI-B)
        adc_config=ADCConfig(resolution_bits=8, energy_per_conversion=16e-12),
    )
    return AcceleratorConfig(
        name="TacitMap-ePCM",
        mapping="tacitmap",
        technology="epcm",
        tile=tile,
        wdm_capacity=1,
        vcores_per_ecore=vcores_per_ecore,
        ecores_per_tile=ecores_per_tile,
        tiles_per_node=tiles_per_node,
    )


def einsteinbarrier_config(*, crossbar_size: int = 256, wdm_capacity: int = 16,
                           columns_per_adc: int = 1,
                           vcores_per_ecore: int = 8,
                           ecores_per_tile: int = 8,
                           tiles_per_node: int = 8) -> AcceleratorConfig:
    """EinsteinBarrier: TacitMap on oPCM VCores with WDM and TIAs.

    Hierarchy sizing (VCores per ECore, ECores per Tile, Tiles per Node)
    is a sweepable provisioning knob, exactly like ``wdm_capacity`` and
    ``columns_per_adc``; defaults reproduce the paper's Fig. 4 node.
    """
    tile = TileConfig(
        rows=crossbar_size,
        cols=crossbar_size,
        technology="opcm",
        readout="adc",
        columns_per_adc=columns_per_adc,
        wdm_capacity=wdm_capacity,
        device_config=OPCMConfig(),
        adc_config=ADCConfig(resolution_bits=8, energy_per_conversion=16e-12),
    )
    return AcceleratorConfig(
        name="EinsteinBarrier",
        mapping="tacitmap",
        technology="opcm",
        tile=tile,
        wdm_capacity=wdm_capacity,
        vcores_per_ecore=vcores_per_ecore,
        ecores_per_tile=ecores_per_tile,
        tiles_per_node=tiles_per_node,
    )


def all_design_configs() -> list[AcceleratorConfig]:
    """The three designs of Sec. V-B, in the paper's reporting order."""
    return [baseline_epcm_config(), tacitmap_epcm_config(), einsteinbarrier_config()]
