"""Compiler: lowers a BNN workload onto an accelerator configuration.

The compiler mirrors what the paper's extended PUMA compiler does for the
evaluation: for every binary layer it derives the mapping schedule (tiling,
crossbar activations, read-out and digital post-processing counts) and emits
the corresponding crossbar/ALU/data-movement instructions; for every
full-precision layer it emits digital MAC bursts; between layers it emits the
activation transfers over the on-chip network.

The output :class:`Program` is consumed by the timing and energy models and
can also be inspected directly (instruction histograms per layer), which the
tests use to check the compiler encodes the paper's structural claims —
e.g. that EinsteinBarrier issues MMM instructions where TacitMap-ePCM issues
``K`` times as many MVM instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.config import AcceleratorConfig
from repro.arch.isa import Instruction, LayerBlock, Opcode
from repro.bnn.workload import LayerSpec, NetworkWorkload
from repro.core.schedule import LayerSchedule, build_layer_schedule


@dataclass(frozen=True)
class Program:
    """A compiled network: one instruction block per MAC layer."""

    network_name: str
    design_name: str
    blocks: List[LayerBlock] = field(default_factory=list)
    schedules: Dict[str, LayerSchedule] = field(default_factory=dict)

    def count(self, opcode: Opcode) -> int:
        """Total dynamic instances of ``opcode`` in the whole program."""
        return sum(block.count(opcode) for block in self.blocks)

    @property
    def binary_blocks(self) -> List[LayerBlock]:
        """Blocks of the crossbar-mapped (binary) layers."""
        return [block for block in self.blocks if block.is_binary]

    @property
    def full_precision_blocks(self) -> List[LayerBlock]:
        """Blocks of the digital (non-binary) layers."""
        return [block for block in self.blocks if not block.is_binary]


def _activation_bytes(spec: LayerSpec, bits: int) -> int:
    """Bytes needed to move one layer's input activations."""
    elements = spec.vector_length * spec.num_input_vectors
    return math.ceil(elements * bits / 8)


def _output_bytes(spec: LayerSpec, bits: int) -> int:
    """Bytes needed to move one layer's output activations."""
    elements = spec.num_weight_vectors * spec.num_input_vectors
    return math.ceil(elements * bits / 8)


def _compile_binary_layer(spec: LayerSpec, config: AcceleratorConfig) -> tuple[LayerBlock, LayerSchedule]:
    schedule = build_layer_schedule(
        spec,
        mapping=config.mapping,
        tile_shape=config.tile_shape,
        wdm_capacity=config.wdm_capacity,
    )
    instructions: List[Instruction] = [
        Instruction(
            Opcode.LOAD,
            count=1,
            operands={"bytes": _activation_bytes(spec, config.activation_bits)},
        ),
        Instruction(
            Opcode.WRITE_WEIGHTS,
            count=1,
            operands={"cells": schedule.cells_programmed},
        ),
    ]
    active_rows = min(2 * spec.vector_length, config.tile.rows) \
        if config.mapping == "tacitmap" else 1
    read_columns = min(spec.num_weight_vectors, config.tile.cols) \
        if config.mapping == "tacitmap" else min(spec.vector_length, config.tile.cols)

    if config.mapping == "tacitmap":
        wavelengths = min(config.wdm_capacity, max(spec.num_input_vectors, 1))
        opcode = Opcode.MMM if wavelengths > 1 else Opcode.MVM
        instructions.append(
            Instruction(
                opcode,
                count=schedule.crossbar_activations,
                operands={
                    "active_rows": active_rows,
                    "read_columns": read_columns,
                    "wavelengths": wavelengths,
                    "sequential_steps": schedule.sequential_steps,
                },
            )
        )
    else:
        instructions.append(
            Instruction(
                Opcode.ROW_READ,
                count=schedule.crossbar_activations,
                operands={
                    "read_columns": read_columns,
                    "sequential_steps": schedule.sequential_steps,
                    "popcount_tree_depth": schedule.popcount_tree_depth,
                },
            )
        )
    if schedule.digital_adds:
        instructions.append(
            Instruction(Opcode.ALU_ADD, count=schedule.digital_adds)
        )
    instructions.append(
        Instruction(
            Opcode.STORE,
            count=1,
            operands={"bytes": _output_bytes(spec, config.full_precision_bits)},
        )
    )
    block = LayerBlock(
        layer_name=spec.name, is_binary=True, instructions=instructions
    )
    return block, schedule


def _compile_full_precision_layer(spec: LayerSpec,
                                  config: AcceleratorConfig) -> LayerBlock:
    instructions = [
        Instruction(
            Opcode.LOAD,
            count=1,
            operands={"bytes": _activation_bytes(spec, config.full_precision_bits)},
        ),
        Instruction(Opcode.ALU_MAC, count=spec.macs),
        Instruction(
            Opcode.STORE,
            count=1,
            operands={"bytes": _output_bytes(spec, config.full_precision_bits)},
        ),
    ]
    return LayerBlock(
        layer_name=spec.name, is_binary=False, instructions=instructions
    )


def compile_network(workload: NetworkWorkload,
                    config: AcceleratorConfig) -> Program:
    """Compile a network workload for one accelerator design."""
    blocks: List[LayerBlock] = []
    schedules: Dict[str, LayerSchedule] = {}
    for spec in workload.layers:
        if spec.is_binary:
            block, schedule = _compile_binary_layer(spec, config)
            schedules[spec.name] = schedule
        else:
            block = _compile_full_precision_layer(spec, config)
        blocks.append(block)
    return Program(
        network_name=workload.name,
        design_name=config.name,
        blocks=blocks,
        schedules=schedules,
    )
