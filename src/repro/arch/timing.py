"""Per-inference latency model.

The latency of one inference is the sum over layers (layers are strictly
dependent, so they execute back-to-back) of:

* **binary layers** — the critical-path crossbar steps of the layer's mapping
  schedule (all tiles of a layer fire concurrently, exactly as both the
  baseline and the proposed designs allow), each step costing one crossbar
  activation of the appropriate kind (PCSA row read for CustBinaryMap, ADC
  VMM/MMM for TacitMap/EinsteinBarrier) plus, for the baseline, the popcount
  tree traversal, plus, for TacitMap, the digital merge of row-segment
  partial counts;
* **full-precision layers** — the MACs of the first/last layers executed on
  the ECore digital unit at its peak MAC throughput;
* **data movement** — activations moved over the on-chip network between
  layers.

One-time weight programming is reported separately and *not* included in the
steady-state inference latency (inference-time accelerators programme the
weights once), mirroring the paper's evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.arch.compiler import Program, compile_network
from repro.arch.config import AcceleratorConfig
from repro.arch.isa import Opcode
from repro.bnn.workload import NetworkWorkload
from repro.crossbar.tile import CrossbarTile


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency of one inference, broken down by contribution.

    All values are in seconds.
    """

    design_name: str
    network_name: str
    per_layer: Dict[str, float] = field(default_factory=dict)
    binary_compute: float = 0.0
    full_precision_compute: float = 0.0
    data_movement: float = 0.0
    weight_programming: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end inference latency (excludes one-time weight writes)."""
        return self.binary_compute + self.full_precision_compute + self.data_movement


class LatencyModel:
    """Estimates inference latency for one accelerator design."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self._tile = CrossbarTile(config.tile)

    # ------------------------------------------------------------------ #
    # Per-step costs
    # ------------------------------------------------------------------ #
    def binary_step_latency(self, active_rows: int, read_columns: int,
                            wavelengths: int, popcount_tree_depth: int) -> float:
        """Latency of one crossbar step of the configured mapping."""
        if self.config.mapping == "tacitmap":
            cost = self._tile.vmm_cost(
                max(active_rows, 1), max(read_columns, 1),
                wavelengths=max(wavelengths, 1),
            )
            return cost["latency"]
        cost = self._tile.pcsa_row_cost(max(read_columns, 1))
        tree = (
            popcount_tree_depth * self.config.digital.add_latency_cycles
            / self.config.digital.clock_hz
        )
        return cost["latency"] + tree

    def transfer_latency(self, num_bytes: int) -> float:
        """Latency of moving ``num_bytes`` over the on-chip network."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return (
            self.config.interconnect.hop_latency
            + num_bytes / self.config.interconnect.bandwidth_bytes_per_s
        )

    # ------------------------------------------------------------------ #
    # Whole-network estimation
    # ------------------------------------------------------------------ #
    def estimate(self, workload: NetworkWorkload,
                 program: Program | None = None) -> LatencyBreakdown:
        """Estimate the inference latency of ``workload`` on this design."""
        if program is None:
            program = compile_network(workload, self.config)
        per_layer: Dict[str, float] = {}
        binary_compute = 0.0
        full_precision_compute = 0.0
        data_movement = 0.0
        weight_programming = 0.0

        for block in program.blocks:
            layer_time = 0.0
            for instruction in block.instructions:
                if instruction.opcode in (Opcode.MVM, Opcode.MMM, Opcode.ROW_READ):
                    steps = instruction.operand("sequential_steps", instruction.count)
                    step_latency = self.binary_step_latency(
                        instruction.operand("active_rows", self.config.tile.rows),
                        instruction.operand("read_columns", self.config.tile.cols),
                        instruction.operand("wavelengths", 1),
                        instruction.operand("popcount_tree_depth", 0),
                    )
                    duration = steps * step_latency
                    binary_compute += duration
                    layer_time += duration
                elif instruction.opcode is Opcode.ALU_ADD:
                    cycles = math.ceil(
                        instruction.count / self.config.digital.macs_per_cycle
                    ) * self.config.digital.add_latency_cycles
                    duration = cycles / self.config.digital.clock_hz
                    binary_compute += duration
                    layer_time += duration
                elif instruction.opcode is Opcode.ALU_MAC:
                    duration = instruction.count / self.config.digital.macs_per_second
                    full_precision_compute += duration
                    layer_time += duration
                elif instruction.opcode in (Opcode.LOAD, Opcode.STORE):
                    duration = self.transfer_latency(instruction.operand("bytes"))
                    data_movement += duration
                    layer_time += duration
                elif instruction.opcode is Opcode.WRITE_WEIGHTS:
                    cells = instruction.operand("cells")
                    rows = math.ceil(cells / max(self.config.tile.cols, 1))
                    weight_programming += (
                        rows * self.config.tile.resolved_device_config.write_latency
                    )
            per_layer[block.layer_name] = layer_time

        return LatencyBreakdown(
            design_name=self.config.name,
            network_name=workload.name,
            per_layer=per_layer,
            binary_compute=binary_compute,
            full_precision_compute=full_precision_compute,
            data_movement=data_movement,
            weight_programming=weight_programming,
        )
