"""PUMA-style instruction set extended with MMM (Sec. IV).

EinsteinBarrier "extends the ISA discussed in an earlier work [PUMA] to
support multiple simultaneous VMMs, called Matrix-Matrix-Multiplication
(MMM)".  The reproduction keeps the instruction set at the granularity the
timing/energy models need: crossbar operations (MVM/MMM for the proposed
mapping, row reads for the baseline), digital arithmetic (adds, popcounts,
MACs for the full-precision layers), and data movement (load/store over the
on-chip network).

Each :class:`Instruction` carries a ``count`` so a compiled program stays
compact (one instruction record per homogeneous burst rather than millions of
identical entries) while still describing exactly how many dynamic operations
execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List


class Opcode(Enum):
    """Operation classes recognised by the timing/energy models."""

    #: analog VMM on one crossbar tile (TacitMap, one input vector)
    MVM = "mvm"
    #: analog MMM on one oPCM tile (TacitMap + WDM, up to K input vectors)
    MMM = "mmm"
    #: single word-line read sensed by PCSAs (CustBinaryMap step)
    ROW_READ = "row_read"
    #: digital two-input addition (partial-sum merge or popcount-tree node)
    ALU_ADD = "alu_add"
    #: digital multiply-accumulate (full-precision first/last layers)
    ALU_MAC = "alu_mac"
    #: move activation bytes across the on-chip network
    LOAD = "load"
    STORE = "store"
    #: program weight bits into crossbar cells (one-time, excluded from
    #: steady-state inference latency but reported for completeness)
    WRITE_WEIGHTS = "write_weights"
    HALT = "halt"


@dataclass(frozen=True)
class Instruction:
    """One (possibly repeated) operation burst.

    Attributes
    ----------
    opcode:
        Operation class.
    count:
        Number of dynamic instances of the operation.
    operands:
        Free-form metadata the models consume, e.g. ``active_rows``,
        ``read_columns``, ``wavelengths`` for crossbar opcodes or ``bytes``
        for data movement.
    """

    opcode: Opcode
    count: int = 1
    operands: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def operand(self, key: str, default: int = 0) -> int:
        """Fetch an operand with a default."""
        return int(self.operands.get(key, default))


@dataclass(frozen=True)
class LayerBlock:
    """All instructions belonging to one network layer."""

    layer_name: str
    is_binary: bool
    instructions: List[Instruction] = field(default_factory=list)

    def count(self, opcode: Opcode) -> int:
        """Total dynamic instances of ``opcode`` in this block."""
        return sum(i.count for i in self.instructions if i.opcode is opcode)


def total_count(blocks: Iterable[LayerBlock], opcode: Opcode) -> int:
    """Total dynamic instances of ``opcode`` across blocks."""
    return sum(block.count(opcode) for block in blocks)
