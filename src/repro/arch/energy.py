"""Per-inference energy model.

Energy is accumulated per layer from the mapping schedule's operation counts
and the component models:

* **crossbar array** — per-cell read energy of every activation (the long
  analog integration window for ADC-read VMMs, the short sensing window for
  PCSA row reads — see :meth:`repro.crossbar.tile.CrossbarTile.pcsa_row_cost`);
* **periphery** — ADC conversions (TacitMap / EinsteinBarrier), PCSA senses
  (baseline) and row/bit-line driver conversions;
* **digital** — popcount-tree additions (baseline) and partial-count merges
  (TacitMap), plus the full-precision layers' MACs;
* **data movement** — activation bytes over the on-chip network;
* **optical overhead** (EinsteinBarrier only) — the transmitter and receiver
  power of Eq. 2 / Eq. 3 integrated over the time the photonic core is busy,
  which is how the extra parallelism "comes at the cost of power for the
  additional components" (Sec. IV-B) while still winning on energy because
  the busy time shrinks by a larger factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.compiler import Program, compile_network
from repro.arch.config import AcceleratorConfig
from repro.arch.isa import Opcode
from repro.arch.timing import LatencyModel
from repro.bnn.workload import NetworkWorkload
from repro.crossbar.tile import CrossbarTile
from repro.photonics.power import crossbar_receiver_power, transmitter_power


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one inference, broken down by component class (joules)."""

    design_name: str
    network_name: str
    per_layer: Dict[str, float] = field(default_factory=dict)
    crossbar_array: float = 0.0
    adc: float = 0.0
    sense_amplifier: float = 0.0
    driver: float = 0.0
    digital: float = 0.0
    data_movement: float = 0.0
    optical_overhead: float = 0.0
    full_precision: float = 0.0
    weight_programming: float = 0.0

    @property
    def total(self) -> float:
        """Total inference energy (excludes one-time weight programming)."""
        return (
            self.crossbar_array
            + self.adc
            + self.sense_amplifier
            + self.driver
            + self.digital
            + self.data_movement
            + self.optical_overhead
            + self.full_precision
        )


class EnergyModel:
    """Estimates inference energy for one accelerator design."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self._tile = CrossbarTile(config.tile)
        self._latency = LatencyModel(config)

    # ------------------------------------------------------------------ #
    # Whole-network estimation
    # ------------------------------------------------------------------ #
    def estimate(self, workload: NetworkWorkload,
                 program: Program | None = None) -> EnergyBreakdown:
        """Estimate the inference energy of ``workload`` on this design."""
        if program is None:
            program = compile_network(workload, self.config)

        device = self.config.tile.resolved_device_config
        adc_energy_per_conversion = self.config.tile.adc_config.energy_per_conversion
        dac_energy = self.config.tile.dac_config.energy_per_conversion
        sense_energy = self.config.tile.pcsa_config.energy_per_sense
        add_energy = self.config.digital.energy_per_add
        mac_energy = self.config.digital.energy_per_mac
        byte_energy = self.config.interconnect.energy_per_byte

        per_layer: Dict[str, float] = {}
        totals = {
            "crossbar_array": 0.0,
            "adc": 0.0,
            "sense_amplifier": 0.0,
            "driver": 0.0,
            "digital": 0.0,
            "data_movement": 0.0,
            "optical_overhead": 0.0,
            "full_precision": 0.0,
            "weight_programming": 0.0,
        }

        for block in program.blocks:
            layer_energy = 0.0
            schedule = program.schedules.get(block.layer_name)
            for instruction in block.instructions:
                if instruction.opcode in (Opcode.MVM, Opcode.MMM):
                    active_rows = instruction.operand(
                        "active_rows", self.config.tile.rows
                    )
                    read_columns = instruction.operand(
                        "read_columns", self.config.tile.cols
                    )
                    array = (
                        instruction.count * active_rows * read_columns
                        * device.read_energy_per_cell
                    )
                    totals["crossbar_array"] += array
                    layer_energy += array
                    if schedule is not None:
                        adc = schedule.adc_conversions * adc_energy_per_conversion
                        driver = schedule.dac_drives * dac_energy
                        totals["adc"] += adc
                        totals["driver"] += driver
                        layer_energy += adc + driver
                    if self.config.technology == "opcm":
                        optical = self._optical_overhead_energy(instruction)
                        totals["optical_overhead"] += optical
                        layer_energy += optical
                elif instruction.opcode is Opcode.ROW_READ:
                    read_columns = instruction.operand(
                        "read_columns", self.config.tile.cols
                    )
                    step = self._tile.pcsa_row_cost(max(read_columns, 1))
                    array = instruction.count * (
                        step["energy"]
                        - read_columns * sense_energy
                        - read_columns * dac_energy
                    )
                    totals["crossbar_array"] += max(array, 0.0)
                    layer_energy += max(array, 0.0)
                    if schedule is not None:
                        senses = schedule.pcsa_senses * sense_energy
                        driver = schedule.dac_drives * dac_energy
                        totals["sense_amplifier"] += senses
                        totals["driver"] += driver
                        layer_energy += senses + driver
                elif instruction.opcode is Opcode.ALU_ADD:
                    digital = instruction.count * add_energy
                    totals["digital"] += digital
                    layer_energy += digital
                elif instruction.opcode is Opcode.ALU_MAC:
                    macs = instruction.count * mac_energy
                    totals["full_precision"] += macs
                    layer_energy += macs
                elif instruction.opcode in (Opcode.LOAD, Opcode.STORE):
                    movement = instruction.operand("bytes") * byte_energy
                    totals["data_movement"] += movement
                    layer_energy += movement
                elif instruction.opcode is Opcode.WRITE_WEIGHTS:
                    totals["weight_programming"] += (
                        instruction.operand("cells") * device.write_energy_per_cell
                    )
            # the baseline's popcount-tree additions travel with ROW_READ
            # blocks as ALU_ADD instructions, already covered above
            per_layer[block.layer_name] = layer_energy

        return EnergyBreakdown(
            design_name=self.config.name,
            network_name=workload.name,
            per_layer=per_layer,
            crossbar_array=totals["crossbar_array"],
            adc=totals["adc"],
            sense_amplifier=totals["sense_amplifier"],
            driver=totals["driver"],
            digital=totals["digital"],
            data_movement=totals["data_movement"],
            optical_overhead=totals["optical_overhead"],
            full_precision=totals["full_precision"],
            weight_programming=totals["weight_programming"],
        )

    # ------------------------------------------------------------------ #
    # Optical overhead (Eq. 2 + Eq. 3 integrated over busy time)
    # ------------------------------------------------------------------ #
    def _optical_overhead_energy(self, instruction) -> float:
        """Transmitter + receiver power during the layer's optical traversal.

        The laser, comb tuning, modulators and TIAs (Eq. 2 + Eq. 3) only need
        to illuminate the array while light traverses the crossbar; during
        the subsequent ADC deserialisation the receiver works on the sampled
        photocurrents, so the overhead power is integrated over
        ``steps x optical_read_latency`` rather than the full step latency.
        """
        steps = instruction.operand("sequential_steps", instruction.count)
        wavelengths = instruction.operand("wavelengths", 1)
        active_rows = instruction.operand("active_rows", self.config.tile.rows)
        read_columns = instruction.operand("read_columns", self.config.tile.cols)
        optical_window = self.config.tile.resolved_device_config.read_latency
        busy_time = steps * optical_window
        power = transmitter_power(
            max(wavelengths, 1), active_rows,
            laser_power=self.config.laser_power_w,
        ) + crossbar_receiver_power(read_columns)
        return power * busy_time
