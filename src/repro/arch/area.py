"""Area model of the evaluated designs.

Section V-A of the paper synthesises the additional CMOS circuitry with
Design Compiler and applies DeepScaleTool-style technology scaling to keep
all components on the same node.  This module provides the equivalent
analytical area accounting: crossbar cell area (1T1R vs 2T2R), read-out
periphery (ADCs vs PCSAs), row drivers, the digital unit, and — for the
photonic design — the transmitter/receiver footprint, so the three designs
can be compared on area as well as latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.bnn.workload import NetworkWorkload
from repro.core.schedule import build_network_schedule
from repro.crossbar.cell import OneT1RCell, TwoT2RCell

#: component area estimates in mm^2 (32 nm-class figures from the public
#: accelerator literature: ISAAC / PUMA style ADC and periphery budgets)
ADC_AREA_MM2 = 0.0012
PCSA_AREA_MM2 = 0.000002
DAC_AREA_MM2 = 0.00000017
DIGITAL_UNIT_AREA_MM2 = 0.24
TIA_AREA_MM2 = 0.00005
MODULATOR_AREA_MM2 = 0.00025
LASER_COMB_AREA_MM2 = 0.05


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one design provisioned for one network, in mm^2."""

    design_name: str
    network_name: str
    crossbar: float
    readout: float
    drivers: float
    digital: float
    photonics: float

    @property
    def total(self) -> float:
        """Total area in mm^2."""
        return (
            self.crossbar + self.readout + self.drivers + self.digital
            + self.photonics
        )


def estimate_area(config: AcceleratorConfig,
                  workload: NetworkWorkload) -> AreaBreakdown:
    """Estimate the silicon/photonic area of ``config`` sized for ``workload``."""
    schedule = build_network_schedule(
        workload,
        mapping=config.mapping,
        tile_shape=config.tile_shape,
        wdm_capacity=config.wdm_capacity,
    )
    num_tiles = schedule.total_tiles
    cells_per_tile = config.tile.rows * config.tile.cols
    cell = OneT1RCell() if config.mapping == "tacitmap" else TwoT2RCell()
    crossbar_area = num_tiles * cells_per_tile * cell.area_um2 * 1e-6

    if config.tile.readout == "adc":
        readout_area = num_tiles * config.tile.num_adcs * ADC_AREA_MM2
    else:
        readout_area = num_tiles * config.tile.cols * PCSA_AREA_MM2
    driver_area = num_tiles * config.tile.rows * DAC_AREA_MM2
    digital_area = DIGITAL_UNIT_AREA_MM2

    photonics_area = 0.0
    if config.technology == "opcm":
        transmitters = max(
            1, -(-num_tiles // max(config.vcores_per_ecore, 1))
        )
        photonics_area = (
            num_tiles * config.tile.cols * TIA_AREA_MM2
            + transmitters * (
                LASER_COMB_AREA_MM2
                + config.wdm_capacity * config.tile.rows * MODULATOR_AREA_MM2
            )
        )
    return AreaBreakdown(
        design_name=config.name,
        network_name=workload.name,
        crossbar=crossbar_area,
        readout=readout_area,
        drivers=driver_area,
        digital=digital_area,
        photonics=photonics_area,
    )
