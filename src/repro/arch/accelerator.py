"""User-facing accelerator façade.

:class:`AcceleratorModel` ties the compiler, the latency model, the energy
model and the hierarchy allocator together behind the call most users want::

    model = AcceleratorModel(einsteinbarrier_config())
    report = model.run_inference(extract_workload(build_network("CNN-L")))
    print(report.latency.total, report.energy.total)

It is the object the evaluation harness instantiates once per design per
network to regenerate Fig. 7 and Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.compiler import Program, compile_network
from repro.arch.config import AcceleratorConfig
from repro.arch.energy import EnergyBreakdown, EnergyModel
from repro.arch.hierarchy import AllocationReport, EinsteinBarrierSystem
from repro.arch.timing import LatencyBreakdown, LatencyModel
from repro.bnn.model import BNNModel
from repro.bnn.workload import NetworkWorkload, extract_workload


@dataclass(frozen=True)
class InferenceReport:
    """Complete per-inference report of one network on one design."""

    design_name: str
    network_name: str
    latency: LatencyBreakdown
    energy: EnergyBreakdown
    allocation: AllocationReport
    program: Program

    @property
    def throughput_inferences_per_s(self) -> float:
        """Steady-state single-stream inference throughput."""
        return 1.0 / self.latency.total if self.latency.total > 0 else float("inf")

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product, a common CIM figure of merit."""
        return self.energy.total * self.latency.total


class AcceleratorModel:
    """End-to-end analytical model of one accelerator design."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self._latency_model = LatencyModel(config)
        self._energy_model = EnergyModel(config)
        self._system = EinsteinBarrierSystem(config)

    @property
    def name(self) -> str:
        """Design name (e.g. ``"EinsteinBarrier"``)."""
        return self.config.name

    def compile(self, workload: NetworkWorkload) -> Program:
        """Compile a workload for this design."""
        return compile_network(workload, self.config)

    def run_inference(self, workload: NetworkWorkload | BNNModel, *,
                      program: Optional[Program] = None) -> InferenceReport:
        """Estimate latency, energy and resource usage of one inference."""
        if isinstance(workload, BNNModel):
            workload = extract_workload(workload)
        if program is None:
            program = self.compile(workload)
        latency = self._latency_model.estimate(workload, program)
        energy = self._energy_model.estimate(workload, program)
        allocation = self._system.allocate(workload)
        return InferenceReport(
            design_name=self.config.name,
            network_name=workload.name,
            latency=latency,
            energy=energy,
            allocation=allocation,
            program=program,
        )
