"""EinsteinBarrier architecture simulator (and its ePCM siblings).

The paper implements EinsteinBarrier as "a heavily extended version of the
PUMA architecture and compiler" (Sec. V-A).  This package provides the
from-scratch Python equivalent used by the reproduction:

* :mod:`repro.arch.config` — accelerator configuration dataclasses and the
  three evaluated designs (Baseline-ePCM, TacitMap-ePCM, EinsteinBarrier);
* :mod:`repro.arch.isa` — a PUMA-style instruction set extended with the MMM
  (matrix-matrix-multiplication) instruction WDM enables;
* :mod:`repro.arch.compiler` — lowers a BNN workload into per-layer
  instruction blocks for a given design;
* :mod:`repro.arch.hierarchy` — the spatial organisation
  (VCore → ECore → Tile → Node) with capacity, area and static-power queries;
* :mod:`repro.arch.timing` / :mod:`repro.arch.energy` — per-inference latency
  and energy models that consume the mapping schedules, the crossbar tile
  costs and the photonic power equations;
* :mod:`repro.arch.accelerator` — the user-facing façade tying it together.
"""

from repro.arch.accelerator import AcceleratorModel, InferenceReport
from repro.arch.area import AreaBreakdown, estimate_area
from repro.arch.compiler import Program, compile_network
from repro.arch.config import (
    AcceleratorConfig,
    DigitalUnitConfig,
    InterconnectConfig,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.arch.energy import EnergyBreakdown, EnergyModel
from repro.arch.hierarchy import ECore, EinsteinBarrierSystem, Node, Tile, VCore
from repro.arch.isa import Instruction, Opcode
from repro.arch.timing import LatencyBreakdown, LatencyModel

__all__ = [
    "AcceleratorModel",
    "InferenceReport",
    "AreaBreakdown",
    "estimate_area",
    "Program",
    "compile_network",
    "AcceleratorConfig",
    "DigitalUnitConfig",
    "InterconnectConfig",
    "baseline_epcm_config",
    "einsteinbarrier_config",
    "tacitmap_epcm_config",
    "EnergyBreakdown",
    "EnergyModel",
    "ECore",
    "EinsteinBarrierSystem",
    "Node",
    "Tile",
    "VCore",
    "Instruction",
    "Opcode",
    "LatencyBreakdown",
    "LatencyModel",
]
