"""Spatial hierarchy of EinsteinBarrier: VCore → ECore → Tile → Node.

Fig. 4 of the paper shows EinsteinBarrier as a PUMA-like spatial machine:
VMM-enabled cores (*VCores*, one crossbar plus its read/write periphery) sit
inside *ECores* (which add the instruction pipeline, register file, scalar
functional units and — for the photonic variant — the transmitter), several
ECores share a *Tile* (with its shared memory and receiver buffer), and Tiles
are assembled into *Nodes* connected by chip-to-chip links.

For the reproduction the hierarchy answers the resource questions the
evaluation depends on: how many VCores does a network need, does it fit in a
node, what is the static power and area bill of the photonic extras, and how
is the per-design accelerator provisioned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.arch.config import AcceleratorConfig
from repro.bnn.workload import NetworkWorkload
from repro.core.schedule import build_network_schedule
from repro.crossbar.cell import OneT1RCell, TwoT2RCell
from repro.crossbar.tile import CrossbarTile
from repro.photonics.power import crossbar_receiver_power, transmitter_power


@dataclass(frozen=True)
class VCore:
    """One VMM-enabled core: a crossbar tile plus its periphery."""

    index: int
    config: AcceleratorConfig

    @property
    def crossbar_cells(self) -> int:
        """Number of device cells in this VCore's crossbar."""
        return self.config.tile.rows * self.config.tile.cols

    @property
    def receiver_static_power(self) -> float:
        """Static receiver power (Eq. 2) of this VCore, in watts."""
        return CrossbarTile(self.config.tile).receiver_static_power()

    @property
    def area_mm2(self) -> float:
        """Crude area estimate of the crossbar array in mm^2."""
        cell = (
            OneT1RCell() if self.config.mapping == "tacitmap" else TwoT2RCell()
        )
        return self.crossbar_cells * cell.area_um2 * 1e-6


@dataclass(frozen=True)
class ECore:
    """External core: VCores + instruction pipeline + (optional) transmitter."""

    index: int
    config: AcceleratorConfig

    @property
    def num_vcores(self) -> int:
        """VCores inside this ECore."""
        return self.config.vcores_per_ecore

    @property
    def transmitter_power(self) -> float:
        """Transmitter power (Eq. 3) of this ECore; zero for ePCM designs."""
        if self.config.technology != "opcm":
            return 0.0
        return transmitter_power(
            self.config.wdm_capacity,
            self.config.tile.rows,
            laser_power=self.config.laser_power_w,
        )

    @property
    def static_power(self) -> float:
        """Static power of this ECore's photonic extras (transmitter + TIAs)."""
        receiver = 0.0
        if self.config.technology == "opcm":
            receiver = self.num_vcores * crossbar_receiver_power(
                self.config.tile.cols
            )
        return self.transmitter_power + receiver


@dataclass(frozen=True)
class Tile:
    """Architecture tile: several ECores sharing memory and a receiver buffer."""

    index: int
    config: AcceleratorConfig

    @property
    def num_ecores(self) -> int:
        """ECores inside this tile."""
        return self.config.ecores_per_tile

    @property
    def num_vcores(self) -> int:
        """Total VCores inside this tile."""
        return self.num_ecores * self.config.vcores_per_ecore

    @property
    def static_power(self) -> float:
        """Static photonic power of this tile's ECores."""
        return self.num_ecores * ECore(0, self.config).static_power


@dataclass(frozen=True)
class Node:
    """One chip: several tiles plus chip-to-chip interconnect."""

    index: int
    config: AcceleratorConfig

    @property
    def num_tiles(self) -> int:
        """Architecture tiles per node."""
        return self.config.tiles_per_node

    @property
    def num_vcores(self) -> int:
        """Total VCores per node."""
        return self.num_tiles * Tile(0, self.config).num_vcores

    @property
    def static_power(self) -> float:
        """Static photonic power of the whole node."""
        return self.num_tiles * Tile(0, self.config).static_power


@dataclass(frozen=True)
class AllocationReport:
    """How a network maps onto the hierarchy of one design."""

    design_name: str
    network_name: str
    vcores_required: int
    vcores_per_node: int
    nodes_required: int
    crossbar_cells_required: int
    per_layer_vcores: Dict[str, int]
    static_optical_power: float
    crossbar_area_mm2: float

    @property
    def fits_single_node(self) -> bool:
        """True when the whole network fits in one node."""
        return self.nodes_required <= 1

    @property
    def vcores_provisioned(self) -> int:
        """Total VCores in the provisioned nodes (allocation granularity)."""
        return self.nodes_required * self.vcores_per_node

    @property
    def node_utilisation(self) -> float:
        """Fraction of provisioned VCores the network actually occupies.

        Nodes are the provisioning granularity, so a network needing one
        VCore more than a node holds pays for a whole second node — the
        effect the hierarchy-sizing sweep axes expose.  A workload with no
        binary layers occupies zero VCores and utilises nothing.
        """
        if self.vcores_required <= 0:
            return 0.0
        return self.vcores_required / self.vcores_provisioned


class EinsteinBarrierSystem:
    """System-level façade over the hierarchy for one accelerator design."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def node(self, index: int = 0) -> Node:
        """Materialise a node descriptor."""
        return Node(index, self.config)

    def allocate(self, workload: NetworkWorkload) -> AllocationReport:
        """Compute the VCore/node requirements of a network on this design."""
        schedule = build_network_schedule(
            workload,
            mapping=self.config.mapping,
            tile_shape=self.config.tile_shape,
            wdm_capacity=self.config.wdm_capacity,
        )
        per_layer = {
            layer.layer_name: layer.num_tiles for layer in schedule.layer_schedules
        }
        vcores_required = schedule.total_tiles
        node = self.node()
        nodes_required = math.ceil(vcores_required / node.num_vcores) if vcores_required else 0
        cells = sum(s.cells_programmed for s in schedule.layer_schedules)
        vcore = VCore(0, self.config)
        return AllocationReport(
            design_name=self.config.name,
            network_name=workload.name,
            vcores_required=vcores_required,
            vcores_per_node=node.num_vcores,
            nodes_required=max(nodes_required, 1),
            crossbar_cells_required=cells,
            per_layer_vcores=per_layer,
            static_optical_power=(
                ECore(0, self.config).static_power
                * math.ceil(vcores_required / max(self.config.vcores_per_ecore, 1))
                / max(self.config.vcores_per_ecore, 1)
                if self.config.technology == "opcm" else 0.0
            ),
            crossbar_area_mm2=vcores_required * vcore.area_mm2,
        )
