"""Deterministic random-number-generator helpers.

Every stochastic component in the simulator (device variability, read noise,
dataset synthesis, weight initialisation) accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  Funnelling creation
through :func:`make_rng` keeps runs reproducible and keeps seed handling in a
single place.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0xB1A5


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` selects the library default seed (deterministic), an ``int``
        seeds a fresh generator, and an existing generator is passed through
        unchanged.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_rngs(seed: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Useful when a component owns several stochastic sub-components (e.g. one
    generator per crossbar tile) and wants their streams decoupled so adding a
    tile does not perturb the noise seen by existing tiles.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = make_rng(seed)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: RngLike, salt: str) -> int:
    """Derive a reproducible integer seed from ``seed`` and a string salt."""
    base = make_rng(seed)
    salt_value = sum(ord(c) * (i + 1) for i, c in enumerate(salt)) % (2**31)
    return int(base.integers(0, 2**31 - 1)) ^ salt_value
