"""Physical unit constants used throughout the simulator.

All internal quantities are kept in SI base units (seconds, joules, watts,
hertz, metres).  The constants defined here are multipliers, so that
``5 * ns`` reads as "five nanoseconds" and evaluates to ``5e-9`` seconds.
Helper functions convert back to human-readable engineering units for
reporting.
"""

from __future__ import annotations

# SI prefixes -----------------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

# Time ------------------------------------------------------------------------
us = MICRO
ns = NANO
ps = PICO

# Energy ----------------------------------------------------------------------
nJ = NANO
pJ = PICO
fJ = FEMTO

# Power -----------------------------------------------------------------------
mW = MILLI
uW = MICRO

# Frequency -------------------------------------------------------------------
GHz = GIGA
MHz = MEGA


def seconds_to_ns(value: float) -> float:
    """Convert a time in seconds to nanoseconds."""
    return value / ns


def joules_to_pj(value: float) -> float:
    """Convert an energy in joules to picojoules."""
    return value / pJ


def joules_to_nj(value: float) -> float:
    """Convert an energy in joules to nanojoules."""
    return value / nJ


def watts_to_mw(value: float) -> float:
    """Convert a power in watts to milliwatts."""
    return value / mW


def format_time(value: float) -> str:
    """Format a time in seconds with an auto-selected engineering unit."""
    if value == 0:
        return "0 s"
    abs_value = abs(value)
    if abs_value >= 1.0:
        return f"{value:.3g} s"
    if abs_value >= MILLI:
        return f"{value / MILLI:.3g} ms"
    if abs_value >= MICRO:
        return f"{value / MICRO:.3g} us"
    if abs_value >= NANO:
        return f"{value / NANO:.3g} ns"
    return f"{value / PICO:.3g} ps"


def format_energy(value: float) -> str:
    """Format an energy in joules with an auto-selected engineering unit."""
    if value == 0:
        return "0 J"
    abs_value = abs(value)
    if abs_value >= 1.0:
        return f"{value:.3g} J"
    if abs_value >= MILLI:
        return f"{value / MILLI:.3g} mJ"
    if abs_value >= MICRO:
        return f"{value / MICRO:.3g} uJ"
    if abs_value >= NANO:
        return f"{value / NANO:.3g} nJ"
    if abs_value >= PICO:
        return f"{value / PICO:.3g} pJ"
    return f"{value / FEMTO:.3g} fJ"


def format_power(value: float) -> str:
    """Format a power in watts with an auto-selected engineering unit."""
    if value == 0:
        return "0 W"
    abs_value = abs(value)
    if abs_value >= 1.0:
        return f"{value:.3g} W"
    if abs_value >= MILLI:
        return f"{value / MILLI:.3g} mW"
    if abs_value >= MICRO:
        return f"{value / MICRO:.3g} uW"
    return f"{value / NANO:.3g} nW"
