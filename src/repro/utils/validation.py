"""Input validation helpers shared across the library.

The simulator's public API accepts plain NumPy arrays and Python scalars; the
helpers here turn malformed inputs into clear ``ValueError``/``TypeError``
messages at the API boundary instead of cryptic broadcasting failures deep
inside the analog models.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that a scalar parameter is positive (or non-negative)."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_binary(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that ``array`` contains only 0/1 values and return it as int8."""
    arr = np.asarray(array)
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(
            f"{name} must contain only 0/1 values, found values {unique[:8]!r}"
        )
    return arr.astype(np.int8)


def check_bipolar(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that ``array`` contains only -1/+1 values and return it as int8."""
    arr = np.asarray(array)
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (-1, 1))):
        raise ValueError(
            f"{name} must contain only -1/+1 values, found values {unique[:8]!r}"
        )
    return arr.astype(np.int8)


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Validate that ``array`` has exactly ``shape``.

    A dimension given as ``-1`` matches any extent.
    """
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim} "
            f"(shape {arr.shape})"
        )
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected != -1 and actual != expected:
            raise ValueError(
                f"{name} has shape {arr.shape}, expected {shape} "
                f"(mismatch on axis {axis})"
            )
    return arr


def check_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return int(value)


def check_in_choices(name: str, value: str, choices: Sequence[str]) -> str:
    """Validate that a string option is one of the allowed choices."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)!r}, got {value!r}")
    return value
