"""Train a BNN on (synthetic) MNIST and estimate its accelerated inference.

Run with ``python examples/mnist_mlp_acceleration.py``.

This is the end-to-end workflow a user of the library would follow:

1. train a small binary MLP on the synthetic MNIST dataset with the
   BinaryConnect/straight-through-estimator recipe (latent full-precision
   weights, binary forward pass);
2. check its test accuracy stays well above chance;
3. extract its workload and compare per-inference latency and energy on
   Baseline-ePCM, TacitMap-ePCM, EinsteinBarrier and the GPU baseline;
4. print the per-layer latency breakdown of EinsteinBarrier to show which
   layers the crossbars accelerate and which stay on the digital units.
"""

from __future__ import annotations

from repro.arch import (
    AcceleratorModel,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.baselines import GPUModel
from repro.bnn.datasets import synthetic_mnist
from repro.bnn.layers import BatchNorm, BinaryLinear, Linear, SignActivation
from repro.bnn.model import BNNModel
from repro.bnn.training import train
from repro.bnn.workload import extract_workload
from repro.eval.reporting import format_table
from repro.utils.units import format_energy, format_time


def build_small_mlp() -> BNNModel:
    """A reduced MLP (784-256-128-10) that trains in seconds on a laptop."""
    return BNNModel(
        [
            Linear(784, 256, rng=1),
            BatchNorm(256),
            SignActivation(),
            BinaryLinear(256, 128, rng=2),
            BatchNorm(128),
            SignActivation(),
            Linear(128, 10, rng=3),
        ],
        name="MLP-mini",
        input_shape=(784,),
    )


def main() -> None:
    print("=== Training a binary MLP on synthetic MNIST ===")
    dataset = synthetic_mnist(train_size=1024, test_size=256, seed=7)
    model = build_small_mlp()
    history = train(model, dataset, epochs=3, batch_size=64,
                    learning_rate=5e-3, seed=0)
    print(f"test accuracy after training: {history.final_test_accuracy:.3f} "
          f"(chance = 0.100)")
    print()

    print("=== Per-inference latency and energy across designs ===")
    workload = extract_workload(model)
    rows = []
    for config in (baseline_epcm_config(), tacitmap_epcm_config(),
                   einsteinbarrier_config()):
        report = AcceleratorModel(config).run_inference(workload)
        rows.append([
            config.name,
            format_time(report.latency.total),
            format_energy(report.energy.total),
            report.allocation.vcores_required,
        ])
    gpu = GPUModel()
    gpu_report = gpu.run_inference(workload)
    rows.append([gpu.name, format_time(gpu_report.latency),
                 format_energy(gpu.energy(workload)), "-"])
    print(format_table(["design", "latency", "energy", "crossbars"], rows))
    print()

    print("=== EinsteinBarrier per-layer latency breakdown ===")
    report = AcceleratorModel(einsteinbarrier_config()).run_inference(workload)
    layer_rows = [
        [layer, format_time(seconds)]
        for layer, seconds in report.latency.per_layer.items()
    ]
    print(format_table(["layer", "latency"], layer_rows))
    print("\nThe first/last (full-precision) layers dominate the accelerated "
          "designs — the Amdahl effect behind the network-dependent speedups "
          "of Fig. 7.")


if __name__ == "__main__":
    main()
