"""Batched packed inference: throughput and accuracy-under-noise demo.

Runs the same CNN batch through the dense layer-by-layer forward pass and
through the batched packed :class:`repro.bnn.model.InferenceEngine` (bit
exactness checked), then sweeps an accuracy-vs-read-noise curve through the
packed engine — the functional complement to the analytical design-space
sweeps of ``examples/sweep_demo.py``.

Run from the repo root::

    PYTHONPATH=src python examples/batched_inference_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network
from repro.eval.reporting import format_table
from repro.eval.sweep import AccuracySweepGrid, run_accuracy_sweep
from repro.utils.rng import make_rng


def throughput_comparison() -> None:
    print("=== dense vs batched packed inference ===")
    rows = []
    for name, batch in (("MLP-L", 128), ("CNN-M", 32)):
        model = build_network(name)
        model.eval()
        rng = make_rng(0xD1CE)
        images = rng.uniform(-1.0, 1.0, size=(batch, *model.input_shape))
        engine = InferenceEngine(model)
        model.forward(images[:2])
        engine.forward_batch(images[:2], batch_size=2)

        start = time.perf_counter()
        dense_logits = model.forward(images)
        dense_s = time.perf_counter() - start
        start = time.perf_counter()
        packed_logits = engine.forward_batch(images, batch_size=batch)
        packed_s = time.perf_counter() - start
        assert np.array_equal(dense_logits, packed_logits), "paths diverged!"
        rows.append([
            name, batch, batch / dense_s, batch / packed_s,
            dense_s / packed_s, "yes",
        ])
    print(format_table(
        ["network", "batch", "dense img/s", "packed img/s", "speedup",
         "bit-exact"],
        rows,
    ))


def accuracy_under_noise() -> None:
    print("\n=== accuracy vs crossbar read noise (packed engine) ===")
    grid = AccuracySweepGrid(
        networks=("MLP-S",),
        technologies=("epcm",),
        read_noise_sigmas=(0.0, 0.002, 0.005, 0.01, 0.02),
        train_epochs=1,
        num_images=128,
        batch_size=64,
    )
    result = run_accuracy_sweep(grid)
    rows = [
        [record.read_noise_sigma, record.mean_flip_rate, record.accuracy]
        for record in result.records
    ]
    print(format_table(["read noise sigma", "mean bit-flip rate", "accuracy"],
                       rows))
    print(
        "\nBinary popcounts survive small read noise untouched (the paper's\n"
        "binary-PCM robustness argument); once column noise crosses the\n"
        "half-count spacing the flips saturate and accuracy falls to chance."
    )


if __name__ == "__main__":
    throughput_comparison()
    accuracy_under_noise()
