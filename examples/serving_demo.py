"""Online serving demo: micro-batching, backpressure, graceful drain.

Run with ``python examples/serving_demo.py [--network NAME] [--clients N]
[--requests N]``.

The paper's accelerator amortises its dense-prefix and ADC cost across
packed batches, so an online deployment wants request *coalescing*: this
demo builds one packed :class:`repro.bnn.model.InferenceEngine`, wraps
it in an :class:`repro.serving.InferenceService` (bounded queue +
deadline-flushed micro-batches + admission gates), then

1. drives it with concurrent closed-loop client threads and prints the
   machine-readable ``stats()`` snapshot — latency percentiles, queue
   and occupancy gauges, flush-trigger mix;
2. demonstrates backpressure: a tight token-bucket
   :class:`repro.serving.RateLimiter` sheds the over-budget tail of a
   burst, visibly, in the rejection counters;
3. walks the operator CLI (``python -m repro.serving``) as a subprocess
   and drains it gracefully with SIGTERM, exactly as a supervisor
   (systemd, Kubernetes) would stop a serving replica.

``docs/serving.md`` is the companion tuning guide.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time

import numpy as np

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network, list_networks
from repro.serving import InferenceService, RateLimiter, RejectedError
from repro.utils.rng import make_rng


def _drive(service: InferenceService, images: np.ndarray, *,
           clients: int, total: int) -> dict:
    """Closed-loop client threads; returns completion/rejection counts."""
    remaining = [total]
    lock = threading.Lock()
    counts = {"completed": 0, "rejected": 0}

    def take() -> bool:
        with lock:
            if remaining[0] <= 0:
                return False
            remaining[0] -= 1
            return True

    def client(offset: int) -> None:
        cursor = offset
        while take():
            image = images[cursor % len(images)]
            cursor += 1
            try:
                service.submit(image).result(timeout=30.0)
                with lock:
                    counts["completed"] += 1
            except RejectedError:
                with lock:
                    counts["rejected"] += 1

    threads = [threading.Thread(target=client, args=(n,))
               for n in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="MLP-S", choices=list_networks())
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    model = build_network(args.network)
    engine = InferenceEngine(model)
    images = make_rng(args.seed).uniform(-1.0, 1.0,
                                         size=(64, *model.input_shape))

    # --- 1. concurrent clients through the micro-batching front door ----
    print(f"[serve] {args.network}: {args.clients} closed-loop clients, "
          f"{args.requests} requests, flush policy max_batch=8 / 2ms")
    with InferenceService(engine, max_batch=8, max_delay_ms=2.0,
                          queue_capacity=256) as service:
        started = time.monotonic()
        counts = _drive(service, images, clients=args.clients,
                        total=args.requests)
        elapsed = time.monotonic() - started
        stats = service.stats()
    print(f"[serve] {counts['completed']} served in {elapsed:.2f}s "
          f"({counts['completed'] / max(elapsed, 1e-9):.0f} req/s)")
    print("[serve] stats snapshot (the same JSON the CLI streams):")
    print(json.dumps({"latency_ms": stats["latency_ms"],
                      "batches": stats["batches"],
                      "queue": stats["queue"]}, indent=2, sort_keys=True))
    served_pred = int(np.argmax(engine.forward_batch(
        images[:1], batch_size=1)))
    print(f"[serve] exactness contract: served logits replay the engine "
          f"bit-for-bit per flushed batch (class {served_pred} for "
          f"image 0 either way; see docs/serving.md)")

    # --- 2. backpressure: a tight rate limit sheds the burst tail -------
    limiter = RateLimiter(50.0, burst=16)
    print("\n[backpressure] re-serving under a 50 req/s token bucket "
          "(burst 16) — the over-budget tail is rejected, not queued:")
    with InferenceService(engine, max_batch=8, max_delay_ms=2.0,
                          rate_limiter=limiter) as service:
        counts = _drive(service, images, clients=args.clients, total=64)
        rejected = service.stats()["requests"]["rejected"]
    print(f"[backpressure] completed={counts['completed']} "
          f"rejected={counts['rejected']} (by reason: {rejected})")

    # --- 3. the operator CLI, drained with SIGTERM like a real replica --
    print("\n[drain] launching the operator CLI: python -m repro.serving "
          f"--network {args.network} --clients 2 --requests 0 "
          "--duration-s 30 ... then SIGTERM once it is serving")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serving", "--network", args.network,
         "--clients", "2", "--requests", "0", "--duration-s", "30",
         "--think-ms", "5", "--stats-interval-s", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines = []
    try:
        assert process.stdout is not None
        for line in process.stdout:  # wait until the replica is serving:
            lines.append(line.rstrip())
            if line.lstrip().startswith("{"):
                break  # the first stats snapshot means traffic is flowing
        process.terminate()  # SIGTERM: the CLI drains in-flight work
        output, _ = process.communicate(timeout=60)
        lines.extend(output.splitlines())
    finally:
        if process.poll() is None:
            process.kill()
    for line in [text for text in lines if text][-2:]:
        print(f"[drain] {line}")
    print(f"[drain] CLI exited {process.returncode} after a graceful drain")

    print("\nTake-away: deadline-flushed micro-batching recovers the "
          "packed engine's batch economics for single-image online "
          "traffic, and every admission decision is observable in the "
          "stats snapshot instead of silent.")


if __name__ == "__main__":
    main()
