"""Quickstart: map a binary layer with TacitMap and compare the three designs.

Run with ``python examples/quickstart.py``.

The script walks through the paper's story in four steps:

1. check Eq. 1 (the XNOR+Popcount identity) on random binary vectors;
2. map a binary fully connected layer with TacitMap and with the baseline
   CustBinaryMap, and verify both compute exactly the same popcounts —
   including through the noisy analog crossbar model for TacitMap;
3. compare the crossbar step counts of the two mappings (the Sec. III claim);
4. estimate the latency and energy of one MLP-S inference on Baseline-ePCM,
   TacitMap-ePCM and EinsteinBarrier.
"""

from __future__ import annotations

import numpy as np

from repro.arch import (
    AcceleratorModel,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn import build_network, extract_workload
from repro.bnn.xnor_ops import binary_dot, binary_dot_via_xnor
from repro.core import CustBinaryMap, TacitMap, TileShape, verify_layer_equivalence
from repro.core.schedule import build_layer_schedule
from repro.utils.units import format_energy, format_time


def step_1_equation_one(rng: np.random.Generator) -> None:
    print("=== Step 1: Eq. 1, In (*) W = 2*popcount(In' XNOR W') - L ===")
    in_vec = np.where(rng.random(16) > 0.5, 1, -1).astype(np.int8)
    w_vec = np.where(rng.random(16) > 0.5, 1, -1).astype(np.int8)
    direct = binary_dot(in_vec, w_vec)
    via_xnor = binary_dot_via_xnor(in_vec, w_vec)
    print(f"direct dot product  : {direct}")
    print(f"via XNOR + popcount : {via_xnor}")
    assert direct == via_xnor
    print()


def step_2_mapping_equivalence(rng: np.random.Generator) -> None:
    print("=== Step 2: both mappings compute the same XNOR+Popcounts ===")
    weights = np.where(rng.random((48, 120)) > 0.5, 1, -1).astype(np.int8)
    inputs = np.where(rng.random((4, 120)) > 0.5, 1, -1).astype(np.int8)
    tacit = verify_layer_equivalence(
        TacitMap(TileShape(256, 256)), weights, inputs
    )
    tacit_analog = verify_layer_equivalence(
        TacitMap(TileShape(256, 256)), weights, inputs, backend="analog", rng=1
    )
    baseline = verify_layer_equivalence(
        CustBinaryMap(TileShape(256, 256)), weights, inputs
    )
    print(f"TacitMap (ideal tiles)      equivalent to Eq. 1: {tacit['equivalent']}")
    print(f"TacitMap (analog crossbars) equivalent to Eq. 1: {tacit_analog['equivalent']}")
    print(f"CustBinaryMap (baseline)    equivalent to Eq. 1: {baseline['equivalent']}")
    print()


def step_3_step_counts() -> None:
    print("=== Step 3: crossbar steps per layer (Sec. III claim) ===")
    workload = extract_workload(build_network("MLP-S"))
    layer = workload.binary_layers[0]
    baseline = build_layer_schedule(layer, mapping="custbinarymap")
    tacit = build_layer_schedule(layer, mapping="tacitmap")
    print(f"layer: {layer.name} ({layer.num_weight_vectors} weight vectors, "
          f"length {layer.vector_length})")
    print(f"CustBinaryMap sequential steps : {baseline.sequential_steps}")
    print(f"TacitMap sequential steps      : {tacit.sequential_steps}")
    print(f"step ratio                     : "
          f"{baseline.sequential_steps / tacit.sequential_steps:.0f}x")
    print()


def step_4_design_comparison() -> None:
    print("=== Step 4: one MLP-S inference on the three designs ===")
    workload = extract_workload(build_network("MLP-S"))
    for config in (baseline_epcm_config(), tacitmap_epcm_config(),
                   einsteinbarrier_config()):
        report = AcceleratorModel(config).run_inference(workload)
        print(f"{config.name:16s} latency={format_time(report.latency.total):>10s} "
              f"energy={format_energy(report.energy.total):>10s} "
              f"crossbars={report.allocation.vcores_required}")
    print()


def main() -> None:
    rng = np.random.default_rng(42)
    step_1_equation_one(rng)
    step_2_mapping_equivalence(rng)
    step_3_step_counts()
    step_4_design_comparison()
    print("Quickstart finished.")


if __name__ == "__main__":
    main()
