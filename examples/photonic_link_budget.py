"""Photonic transmitter walk-through and optical link budget.

Run with ``python examples/photonic_link_budget.py``.

This example exercises the photonic substrate on its own:

1. build the Fig. 6 transmitter (laser, microresonator comb, DMUX, VOAs,
   MUX), encode a batch of binary activation vectors onto WDM wavelengths and
   recover them at the receiver;
2. evaluate the optical link budget of a 256x256 oPCM crossbar and find the
   largest array height the default component stack can feed;
3. sweep Eq. 2 / Eq. 3 to show how the photonic power overhead scales with
   the crossbar width and the WDM capacity.
"""

from __future__ import annotations

import numpy as np

from repro.eval.reporting import format_series, format_table
from repro.photonics import (
    Transmitter,
    TransmitterConfig,
    WDMChannelPlan,
    crossbar_receiver_power,
    transmitter_power,
)
from repro.photonics.link import OpticalLink, evaluate_link_budget, max_rows_for_closure
from repro.utils.units import format_power


def main() -> None:
    rng = np.random.default_rng(3)

    print("=== 1. WDM transmitter encode / decode ===")
    plan = WDMChannelPlan()
    print(f"effective WDM capacity with default crosstalk model: "
          f"{plan.effective_capacity()} wavelengths (paper assumes K = 16)")
    transmitter = Transmitter(TransmitterConfig(num_rows=32))
    vectors = rng.integers(0, 2, size=(8, 32))
    signals = transmitter.encode(vectors)
    wavelengths = sorted(signals[0].keys())
    recovered = np.array([
        transmitter.decode_reference(signals, wavelengths[i]) for i in range(8)
    ])
    print(f"8 binary vectors of 32 bits encoded on 8 wavelengths; "
          f"recovered without error: {bool(np.array_equal(recovered, vectors))}")
    print(f"transmitter electrical power: "
          f"{format_power(transmitter.electrical_power())}")
    print()

    print("=== 2. Optical link budget of one oPCM crossbar column ===")
    link = OpticalLink()
    rows = []
    for height in (64, 256, 1024):
        budget = evaluate_link_budget(link, num_rows=height, wdm_capacity=16)
        rows.append([
            height, f"{budget.path_loss_db:.2f}",
            f"{budget.detected_power_w * 1e9:.2f}",
            f"{budget.margin_db:+.1f}", "yes" if budget.closes else "no",
        ])
    print(format_table(
        ["rows", "path loss [dB]", "detected [nW]", "margin [dB]", "closes"], rows
    ))
    print(f"largest array height the default link still closes: "
          f"{max_rows_for_closure(link, wdm_capacity=16)} rows")
    print()

    print("=== 3. Photonic power overhead (Eq. 2 / Eq. 3) ===")
    widths = [64, 128, 256, 512]
    print(format_series(
        "receiver power [W]", widths,
        [crossbar_receiver_power(n) for n in widths],
        x_label="columns", y_label="W",
    ))
    capacities = [1, 2, 4, 8, 16]
    print(format_series(
        "transmitter power [W] (M=256)", capacities,
        [transmitter_power(k, 256) for k in capacities],
        x_label="K", y_label="W",
    ))


if __name__ == "__main__":
    main()
