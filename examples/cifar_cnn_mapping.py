"""Map a CIFAR-10 binary CNN onto EinsteinBarrier and inspect the result.

Run with ``python examples/cifar_cnn_mapping.py``.

The convolutional networks are where WDM pays off: every conv layer produces
hundreds of activation vectors (sliding windows), and EinsteinBarrier folds
up to K = 16 of them into one Matrix-Matrix Multiplication per crossbar
activation (Fig. 5).  The script shows, for CNN-M:

1. the per-layer tiling (how many VCores/crossbars each layer occupies and
   how the whole network maps onto nodes);
2. the VMM-to-MMM folding: crossbar steps with and without WDM;
3. the latency/energy breakdown against the baseline designs.
"""

from __future__ import annotations

from repro.arch import (
    AcceleratorModel,
    EinsteinBarrierSystem,
    baseline_epcm_config,
    einsteinbarrier_config,
    tacitmap_epcm_config,
)
from repro.bnn import build_network, extract_workload
from repro.core.schedule import build_network_schedule
from repro.eval.reporting import format_table
from repro.utils.units import format_energy, format_time


def main() -> None:
    network = build_network("CNN-M")
    workload = extract_workload(network)
    print(network.summary())
    print()

    print("=== Per-layer tiling on EinsteinBarrier (256x256 oPCM crossbars) ===")
    config = einsteinbarrier_config()
    system = EinsteinBarrierSystem(config)
    allocation = system.allocate(workload)
    rows = [[layer, tiles] for layer, tiles in allocation.per_layer_vcores.items()]
    print(format_table(["binary layer", "VCores"], rows))
    print(f"total VCores: {allocation.vcores_required} "
          f"({allocation.nodes_required} node(s), "
          f"{allocation.crossbar_area_mm2:.2f} mm^2 of crossbars)")
    print()

    print("=== WDM folding: crossbar steps with and without wavelengths ===")
    plain = build_network_schedule(workload, mapping="tacitmap",
                                   tile_shape=config.tile_shape)
    wdm = build_network_schedule(workload, mapping="tacitmap",
                                 tile_shape=config.tile_shape,
                                 wdm_capacity=config.wdm_capacity)
    rows = []
    for before, after in zip(plain.layer_schedules, wdm.layer_schedules):
        rows.append([
            before.layer_name, before.sequential_steps, after.sequential_steps,
            before.sequential_steps / after.sequential_steps,
        ])
    print(format_table(
        ["binary layer", "VMM steps (K=1)", "MMM steps (K=16)", "fold"], rows
    ))
    print()

    print("=== Design comparison for one CNN-M inference ===")
    rows = []
    for design in (baseline_epcm_config(), tacitmap_epcm_config(), config):
        report = AcceleratorModel(design).run_inference(workload)
        rows.append([
            design.name,
            format_time(report.latency.total),
            format_time(report.latency.binary_compute),
            format_time(report.latency.full_precision_compute),
            format_energy(report.energy.total),
        ])
    print(format_table(
        ["design", "total latency", "binary layers", "fp layers", "energy"], rows
    ))


if __name__ == "__main__":
    main()
