"""Design-space exploration of the oPCM VCores (the paper's future work).

Run with ``python examples/wdm_design_space.py``.

Sec. VI-C notes that the paper evaluates EinsteinBarrier at a single fixed
configuration (K = 16, 256x256 arrays, private ADCs) and leaves the design
space exploration to future work.  This example runs the three ablation
sweeps shipped with the reproduction — WDM capacity, crossbar size and ADC
sharing — on a convolutional and a fully connected workload and prints the
resulting latency/energy trends.
"""

from __future__ import annotations

from repro.eval.ablations import (
    sweep_adc_sharing,
    sweep_crossbar_size,
    sweep_wdm_capacity,
)
from repro.eval.reporting import format_table


def print_sweep(title: str, parameter_name: str, points) -> None:
    rows = [
        [f"{point.parameter:g}", point.latency * 1e6, point.speedup_vs_baseline,
         point.energy * 1e6, point.energy_ratio_vs_baseline]
        for point in points
    ]
    print(f"=== {title} ===")
    print(format_table(
        [parameter_name, "latency[us]", "speedup vs baseline", "energy[uJ]",
         "energy vs baseline"],
        rows,
    ))
    print()


def main() -> None:
    print_sweep(
        "WDM capacity sweep (EinsteinBarrier, CNN-L)", "K",
        sweep_wdm_capacity("CNN-L", capacities=(1, 2, 4, 8, 16, 32)),
    )
    print_sweep(
        "WDM capacity sweep (EinsteinBarrier, MLP-L: no folding available)", "K",
        sweep_wdm_capacity("MLP-L", capacities=(1, 4, 16)),
    )
    print_sweep(
        "Crossbar size sweep (EinsteinBarrier, CNN-L)", "array size",
        sweep_crossbar_size("CNN-L", sizes=(64, 128, 256, 512, 1024)),
    )
    print_sweep(
        "ADC sharing sweep (TacitMap-ePCM, CNN-M)", "columns/ADC",
        sweep_adc_sharing("CNN-M", columns_per_adc=(1, 2, 4, 8, 16, 32)),
    )
    print("Take-away: WDM folding only helps layers with many activation "
          "vectors (convolutions), larger arrays help both proposed designs, "
          "and ADC sharing trades read-out latency for converter count "
          "without changing energy.")


if __name__ == "__main__":
    main()
