"""Multi-axis design-space sweep with the declarative grid runner.

Run with ``python examples/sweep_demo.py [--workers N] [--backend NAME]
[--out sweep.json]``; artifacts default to the ignored ``examples/out/``
directory.

Where :mod:`repro.eval.ablations` sweeps one parameter at a time, the
:mod:`repro.eval.sweep` subsystem evaluates the full cross product —
network x design x crossbar size x WDM capacity x read-noise level — with
memoised workloads/models/schedules, executing through the pluggable
:mod:`repro.runtime` executor layer.  This example:

1. declares a grid over two networks, all three designs, three crossbar
   sizes and three WDM capacities, with a functional read-noise axis;
2. runs it (serially by default; ``--workers``/``--backend`` select a
   parallel backend), showing that results are deterministic either way;
3. prints the result table, the best configuration per network, and writes
   the structured JSON artifact the benchmarks/CI consume.

``--backend queue`` additionally walks the multi-host runbook
(``docs/multihost-runbook.md``) end-to-end against a temporary shared
directory: it launches a real external worker process with
``python -m repro.runtime.queue <dir> serve --watch``, cooperates with it
through a :class:`~repro.runtime.queue.QueueExecutor`, prints the
machine-readable ``status`` summary and the ``autoscale`` advisory, and
drains the worker gracefully with SIGTERM — everything a real fleet
does, minus the second host.  ``--store {dir,object}`` selects the
queue-storage backend for that walk: ``object`` runs the whole protocol
over S3-style conditional-put semantics (the in-repo
``LocalObjectStore``), exported to the worker via the
``REPRO_RUNTIME_STORE`` environment toggle exactly as an operator would
move a real fleet.

``--sharded`` demonstrates the at-scale path (:mod:`repro.eval.shard`):
it stages an *interrupted* sweep — a prefix of the grid published into a
sweep root's append-only columnar store — prints the ``--status`` view
(``python -m repro.eval.shard <root> --status``), then resumes the full
grid there.  The resume plan skips every published content-addressed
identity, so only the missing points are queued into ``part-*``
partitions, and the final artifact is aggregated out of the columnar
segments by the tree merge.  Combine with ``--store object`` to run the
partition queues over the object-store backend.

``--supervise`` upgrades the fleet walk: instead of one hand-launched
worker, it starts the supervisor daemon
(``python -m repro.runtime.queue <dir> supervise``) and lets *it* act on
the autoscale advisory — spawning workers for the backlog, scaling back
to zero once the queue drains, and exiting on its own via
``--idle-exit-seconds``.  This process is then a pure coordinator
(``QueueExecutor(inline_worker=False)``): every record is produced by a
worker the supervisor chose to run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

from repro.eval.reporting import format_sweep_table
from repro.eval.sweep import SweepGrid, SweepResult, run_sweep, write_sweep_json
from repro.runtime import BACKENDS

#: generated example artifacts land in an ignored directory, never the repo
#: root (only the committed BENCH_*.json artifacts live there)
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "out", "sweep_demo.json")


def _run_on_shared_queue(grid: SweepGrid, store_name: str) -> SweepResult:
    """The multi-host runbook, end-to-end, against a temp shared dir."""
    from repro.runtime import janitor
    from repro.runtime.queue import QueueExecutor
    from repro.runtime.store import STORE_ENV

    with tempfile.TemporaryDirectory(prefix="repro-fleet-demo-") as shared:
        print(f"[runbook] shared queue dir: {shared} "
              f"(store backend: {store_name})")
        print("[runbook] launching an external worker: "
              f"{STORE_ENV}={store_name} "
              f"python -m repro.runtime.queue {shared} serve --watch")
        # the worker inherits this process's environment, so however repro
        # was made importable here (PYTHONPATH=src, pip install -e) works
        # there too — exactly like launching it on another host; the store
        # toggle travels the same way, moving the whole fleet at once
        env = dict(os.environ)
        env[STORE_ENV] = store_name
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.queue", shared,
             "serve", "--watch", "--poll-interval", "0.1"],
            env=env,
        )
        try:
            # the submitting process cooperates in draining the queue, so
            # the demo completes even if the worker is slow to start; the
            # autoscale hook streams scaling advisories while it collects
            advisories = []
            executor = QueueExecutor(shared, lease_s=10.0,
                                     compact_threshold=8, store=store_name,
                                     autoscale_hook=advisories.append)
            result = run_sweep(grid, executor=executor)
            print("[runbook] queue status after the run "
                  f"(python -m repro.runtime.queue {shared} status) — "
                  "successful runs retire their run-* namespace, so a "
                  "clean fleet reads all-zero:")
            print(json.dumps(janitor.status(shared, store=store_name),
                             indent=2, sort_keys=True))
            print("[runbook] autoscale advisory "
                  f"(python -m repro.runtime.queue {shared} autoscale) — "
                  "an empty queue recommends scale-to-zero:")
            print(json.dumps(janitor.autoscale_advisory(
                shared, store=store_name), indent=2, sort_keys=True))
            if advisories:
                print(f"[runbook] the executor's autoscale_hook saw "
                      f"{len(advisories)} advisory(ies) while collecting; "
                      f"first action: {advisories[0]['action']}")
        finally:
            print("[runbook] draining the worker with SIGTERM...")
            worker.terminate()
            worker.wait(timeout=30)
    return result


def _run_sharded(grid: SweepGrid, store_name, partitions: int) -> SweepResult:
    """The at-scale path: stage an interrupted sweep, then resume it."""
    from dataclasses import replace

    from repro.eval import shard

    with tempfile.TemporaryDirectory(prefix="repro-shard-demo-") as root:
        # phase 1 — "the sweep that got interrupted": only a prefix of the
        # noise axis ever published into the root's columnar store
        partial = replace(grid, noise_sigmas=grid.noise_sigmas[:1])
        print(f"[sharded] sweep root: {root} (partitions: {partitions})")
        print(f"[sharded] publishing a {len(partial.points())}-point prefix "
              "of the grid, as if the original submitter died...")
        shard.run_sharded_sweep(partial, root, partitions=partitions,
                                store=store_name)

        # phase 2 — resume the *full* grid in the same root; the planner
        # skips every published content-addressed identity
        points = shard.identified_points(grid)
        published = shard.columnar_store(root).published_identities()
        pending = sum(1 for identity, _ in points
                      if identity not in published)
        print(f"[sharded] status before the resume (python -m "
              f"repro.eval.shard {root} --status): "
              f"{len(published)} rows published, {pending} of "
              f"{len(points)} grid points pending")
        plan = shard.prepare_sweep(grid, root, partitions=partitions,
                                   store=store_name)
        print(f"[sharded] resume plan: skipped {plan.skipped} published "
              f"identities, queued {plan.pending} points into "
              f"{len(plan.partitions)} part-* partitions")
        result = shard.drain_and_aggregate(root, plan, store=store_name)
        columnar = shard.columnar_store(root)
        print(f"[sharded] columnar store after aggregation: "
              f"{columnar.rows} rows in {len(columnar.segments())} "
              "append-only segments, tree-merged into the final artifact")
    return result


def _run_under_supervisor(grid: SweepGrid, store_name: str) -> SweepResult:
    """The supervised fleet: the daemon owns every worker, we only submit."""
    from collections import Counter

    from repro.runtime.queue import QueueExecutor
    from repro.runtime.store import STORE_ENV

    with tempfile.TemporaryDirectory(prefix="repro-fleet-demo-") as shared:
        events_path = os.path.join(shared, "events.jsonl")
        argv = [sys.executable, "-m", "repro.runtime.queue", shared,
                "supervise", "--store", store_name,
                "--min-workers", "0", "--max-workers", "2",
                "--tasks-per-worker", "4", "--poll-interval", "0.2",
                "--cooldown-seconds", "0.5", "--lease-seconds", "10",
                "--idle-exit-seconds", "3.0", "--events", events_path]
        print(f"[supervise] shared queue dir: {shared} "
              f"(store backend: {store_name})")
        print("[supervise] starting the fleet supervisor: "
              + " ".join(argv[1:]))
        env = dict(os.environ)
        env[STORE_ENV] = store_name
        daemon = subprocess.Popen(argv, env=env)
        try:
            # a pure coordinator: if records come back, the supervisor
            # scaled real workers up for the backlog all by itself
            executor = QueueExecutor(shared, inline_worker=False,
                                     timeout_s=600.0, lease_s=10.0,
                                     store=store_name)
            result = run_sweep(grid, executor=executor)
            print("[supervise] queue drained; waiting for the daemon's "
                  "scale-to-zero idle exit...")
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                daemon.wait(timeout=30)
        print(f"[supervise] daemon exited with code {daemon.returncode}")
        with open(events_path, "r", encoding="utf-8") as handle:
            counts = Counter(json.loads(line)["event"]
                             for line in handle if line.strip())
        print("[supervise] event stream digest: "
              + ", ".join(f"{kind} x{count}"
                          for kind, count in sorted(counts.items())))
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="parallel workers (0 = serial)")
    parser.add_argument("--backend", default=None, choices=BACKENDS,
                        help="runtime executor backend (default: resolved "
                             "from --workers / REPRO_RUNTIME_BACKEND)")
    parser.add_argument("--store", default=None, choices=("dir", "object"),
                        help="queue-storage backend for the fleet walk "
                             "(implies --backend queue; 'object' runs the "
                             "whole protocol over S3-style conditional "
                             "puts)")
    parser.add_argument("--supervise", action="store_true",
                        help="fleet walk under the supervisor daemon: it "
                             "acts on the autoscale advisory and owns every "
                             "worker (implies --backend queue)")
    parser.add_argument("--sharded", action="store_true",
                        help="run the at-scale sharded path: stage an "
                             "interrupted sweep in a root, then resume it — "
                             "published identities are skipped, only the "
                             "missing points queue into part-* partitions")
    parser.add_argument("--partitions", type=int, default=4,
                        help="partition count for --sharded (default: 4)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="path of the JSON artifact to write")
    args = parser.parse_args()
    if (args.store is not None or args.supervise) and args.backend is None \
            and not args.sharded:
        reason = "--supervise" if args.supervise else f"--store {args.store}"
        print(f"{reason} implies --backend queue")
        args.backend = "queue"
    if args.store is not None and args.backend != "queue" \
            and not args.sharded:
        parser.error("--store only applies to the queue backend or --sharded")
    if args.supervise and args.backend != "queue":
        parser.error("--supervise only applies to the queue backend")
    if args.sharded and args.supervise:
        parser.error("--sharded and --supervise are separate walks")

    grid = SweepGrid(
        networks=("MLP-L", "CNN-L"),
        designs=("baseline_epcm", "tacitmap_epcm", "einsteinbarrier"),
        crossbar_sizes=(128, 256, 512),
        wdm_capacities=(4, 16, 32),
        noise_sigmas=(0.0, 0.02, 0.05),
        seed=0,
    )
    mode = args.backend or ("serial" if args.workers < 2
                            else f"{args.workers} workers")
    print(f"evaluating {len(grid.points())} grid points ({mode})...")
    if args.sharded:
        result = _run_sharded(grid, args.store, args.partitions)
    elif args.supervise:
        result = _run_under_supervisor(grid, args.store or "dir")
    elif args.backend == "queue":
        result = _run_on_shared_queue(grid, args.store or "dir")
    else:
        result = run_sweep(grid, workers=args.workers or None,
                           backend=args.backend)

    print(format_sweep_table(record.to_dict() for record in result.records))
    print()
    for network in grid.networks:
        best = max(
            (r for r in result.records if r.network == network),
            key=lambda r: r.speedup_vs_baseline,
        )
        print(f"best for {network}: {best.design} at {best.crossbar_size}x"
              f"{best.crossbar_size}, K={best.wdm_capacity} -> "
              f"{best.speedup_vs_baseline:.0f}x speedup, "
              f"{best.energy_ratio_vs_baseline:.2f}x energy")

    write_sweep_json(args.out, result)
    print(f"\nwrote {args.out}")
    print("Take-away: the sweep API turns the paper's fixed evaluation "
          "point into a reproducible, parallel design-space exploration; "
          "the WDM axis only pays off on convolutional workloads, and the "
          "noise axis confirms binary read-out stays robust where the "
          "speedups are earned.")


if __name__ == "__main__":
    main()
