"""Setup shim so the package installs editable without network access.

The environment has no wheel package and no network, so PEP 517 editable
builds fail; ``python setup.py develop`` / legacy ``pip install -e .`` paths
use this file together with pyproject.toml metadata.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
