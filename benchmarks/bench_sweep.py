"""Vectorised inference kernels + parallel design-space sweep subsystem.

Two measurements, recorded into ``BENCH_sweep.json`` at the repo root (the
artifact CI uploads per PR):

* the im2col/bit-packed binary convolution kernels against the per-pixel
  loop oracle (:func:`repro.bnn.xnor_ops.binary_conv2d_reference`) on a
  CIFAR-scale layer — the speedup must stay >= 20x;
* the declarative :mod:`repro.eval.sweep` grid runner (network x design x
  crossbar size x WDM capacity) with its memoised schedule/model caches,
  executing through the :mod:`repro.runtime` layer;
* the hierarchy-sizing scenario: VCores/ECore x Tiles/Node provisioning
  axes with the ``nodes_required`` / ``node_utilisation`` metrics;
* the queue-store protocol scenario: per-task fleet-protocol overhead of
  the ``dir`` (POSIX rename) vs ``object`` (S3-style conditional put)
  storage backends, records checked against the serial oracle;
* the sharded-resume scenario: cold :mod:`repro.eval.shard` submission
  (partition planning, columnar fold, tree aggregation) vs resuming an
  interrupted sweep, with the re-executed-published-identity count gated
  at exactly zero.

Repeated kernel timings run through :func:`repro.runtime.measure.measure`,
the same layer the sweeps execute on.

Run with ``pytest benchmarks/bench_sweep.py -s`` (add ``--smoke`` for the
CI-sized configuration).
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.bnn.xnor_ops import (
    binary_conv2d,
    binary_conv2d_reference,
    binary_matmul_reference,
    im2col_reference,
)
from repro.core.schedule import clear_schedule_cache, schedule_cache_stats
from repro.eval.reporting import format_sweep_table, host_info, write_json_report
from repro.eval.sweep import SweepGrid, clear_sweep_caches, run_sweep
from repro.runtime import measure
from repro.utils.rng import make_rng

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: the checked-in full-run artifact; smoke runs write a sibling file so the
#: CI smoke job never clobbers the committed full-scale measurements
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_sweep.json")
SMOKE_ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_sweep.smoke.json")


def _random_bipolar(rng, shape):
    return np.where(rng.random(shape) < 0.5, -1, 1).astype(np.int8)


def _time_conv_kernels(smoke: bool) -> dict:
    """Time the loop oracle against the vectorised kernels, exactness-checked."""
    rng = make_rng(0xC1FA)
    if smoke:
        batch, channels, extent = 1, 32, 16
    else:
        # CIFAR-scale hidden layer of CNN-L: 128 -> 128 channels, 3x3, 32x32
        batch, channels, extent = 1, 128, 32
    images = _random_bipolar(rng, (batch, channels, extent, extent))
    kernels = _random_bipolar(rng, (channels, channels, 3, 3))

    start = time.perf_counter()
    reference_out = binary_conv2d_reference(images, kernels, stride=1, padding=1)
    loop_seconds = time.perf_counter() - start

    # the pre-vectorisation implementation this PR actually replaced:
    # loop-based im2col feeding the double-int-matmul match counter
    start = time.perf_counter()
    patches, out_h, out_w = im2col_reference(images, 3, stride=1, padding=1)
    prior_out = binary_matmul_reference(
        patches, kernels.reshape(channels, -1)
    ).reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
    prior_seconds = time.perf_counter() - start
    assert np.array_equal(prior_out, reference_out)

    results = {
        "layer_shape": {
            "batch": batch, "channels": channels,
            "height": extent, "width": extent, "kernel": 3, "padding": 1,
        },
        "loop_reference_seconds": loop_seconds,
        "prior_implementation_seconds": prior_seconds,
        "kernels": {},
    }
    for kernel_name in ("blas", "packed"):
        out = binary_conv2d(images, kernels, stride=1, padding=1,
                            kernel=kernel_name)
        assert np.array_equal(out, reference_out), kernel_name
        timing = measure(
            lambda: binary_conv2d(images, kernels, stride=1, padding=1,
                                  kernel=kernel_name),
            reps=1 if smoke else 3, label=f"binary_conv2d/{kernel_name}",
        )
        results["kernels"][kernel_name] = {
            "seconds": timing.best,
            "speedup_vs_loop_reference": loop_seconds / timing.best,
            "speedup_vs_prior_implementation": prior_seconds / timing.best,
        }
    return results


def _hierarchy_sizing_sweep(smoke: bool) -> dict:
    """Hierarchy-sizing scenario: provisioning vs node organisation.

    Sweeps VCores/ECore and Tiles/Node (the axes that close the ROADMAP's
    hierarchy-sizing item) on the two PUMA-like designs and reports how the
    node count and VCore utilisation respond — the axis collapses for the
    baseline design, which contributes a single fixed-organisation point.
    """
    grid = SweepGrid(
        networks=("CNN-S",) if smoke else ("CNN-L", "MLP-L"),
        designs=("baseline_epcm", "tacitmap_epcm", "einsteinbarrier"),
        crossbar_sizes=(256,),
        wdm_capacities=(16,),
        vcores_per_ecore=(None, 2) if smoke else (None, 2, 4),
        tiles_per_node=(None, 1) if smoke else (None, 1, 2),
    )
    result = run_sweep(grid)
    # shrinking the node must never *reduce* the nodes required, and the
    # baseline must collapse to exactly one organisation per network
    for network in grid.networks:
        for design in ("tacitmap_epcm", "einsteinbarrier"):
            picks = [r for r in result.records
                     if r.network == network and r.design == design]
            default = next(r for r in picks
                           if (r.vcores_per_ecore, r.tiles_per_node) == (8, 8))
            smallest = min(
                picks, key=lambda r: r.vcores_per_ecore * r.tiles_per_node
            )
            assert smallest.nodes_required >= default.nodes_required
            assert smallest.node_utilisation >= default.node_utilisation
        baseline_points = [r for r in result.records
                           if r.network == network
                           and r.design == "baseline_epcm"]
        assert len(baseline_points) == 1
    return {
        "grid_points": len(result.records),
        "records": [record.to_dict() for record in result.records],
    }


def _queue_fleet_bench(smoke: bool) -> dict:
    """Fleet-protocol scenario: the sweep through the hardened work queue.

    Drives the queue protocol directly — shared-fn publication,
    lease-stamped claims, heartbeat-renewed execution, opportunistic
    result compaction into bundles, bundle-aware collection — over
    **both queue-storage backends** (the POSIX ``dir`` layout and the
    S3-semantics ``object`` store), and checks the records stay
    identical to the in-process serial oracle either way.  The recorded
    overhead-per-task numbers are what a fleet operator pays for
    durability: renames on a shared filesystem vs conditional puts with
    generation tokens.

    Each store is additionally swept over ``tasks_per_claim`` (1 / 4 /
    16): batched leases (PR 8) amortise the claim/lease/release
    round-trips over whole batches, and the per-task overhead reduction
    at 16 vs the classic protocol is the gated win.  ``tasks_per_claim=1``
    doubles as the store-level backwards-compatible numbers.
    """
    import tempfile

    from repro.eval.sweep import evaluate_point
    from repro.runtime import janitor
    from repro.runtime.queue import (
        collect_results,
        enqueue_task,
        init_queue_dirs,
        serve,
        write_shared_fn,
    )
    from repro.runtime.store import make_store
    from repro.runtime.tasks import WorkList

    grid = SweepGrid(
        networks=("MLP-S",) if smoke else ("MLP-S", "CNN-S"),
        crossbar_sizes=(128, 256),
        wdm_capacities=(4, 16),
    )
    specs = grid.points()
    worklist = WorkList.from_items(evaluate_point, specs)
    # warm the memoisation caches so serial vs queue isolates protocol cost
    serial_records = [task.run() for task in worklist]
    start = time.perf_counter()
    serial_records = [task.run() for task in worklist]
    serial_seconds = time.perf_counter() - start

    chunk = 4
    results = {"grid_points": len(specs), "serial_seconds": serial_seconds,
               "compact_chunk": chunk, "stores": {}}
    reps = 3  # median-of-reps absorbs fs/scheduler noise on small runs
    for store_name in ("dir", "object"):
        store = make_store(store_name)
        batches = {}
        for tasks_per_claim in (1, 4, 16):
            timings = []
            for _ in range(reps):
                with tempfile.TemporaryDirectory(
                        prefix=f"repro-bench-queue-{store_name}-") as root:
                    init_queue_dirs(root, store=store)
                    write_shared_fn(root, evaluate_point, store=store)
                    for task in worklist:
                        enqueue_task(root, task, shared_fn=True, store=store)
                    start = time.perf_counter()
                    served = serve(root, compact_threshold=chunk,
                                   tasks_per_claim=tasks_per_claim,
                                   store=store)
                    status = janitor.status(root, store=store)
                    queue_records = collect_results(
                        root, len(specs), timeout_s=120.0,
                        poll_interval_s=0.01, compact_threshold=chunk,
                        store=store,
                    )
                    timings.append(time.perf_counter() - start)
                assert served == len(specs), (store_name, tasks_per_claim)
                assert queue_records == serial_records, (store_name,
                                                         tasks_per_claim)
                assert status["done"] == len(specs) and status["failed"] == 0
                assert status["layouts"]["."]["bundles"] >= 1  # compacted
            queue_seconds = statistics.median(timings)
            batches[str(tasks_per_claim)] = {
                "queue_seconds": queue_seconds,
                "protocol_overhead_ms_per_task":
                    (queue_seconds - serial_seconds) * 1e3 / len(specs),
                "bundles": status["layouts"]["."]["bundles"],
                "reps": reps,
            }
        classic = batches["1"]["protocol_overhead_ms_per_task"]
        batched = batches["16"]["protocol_overhead_ms_per_task"]
        results["stores"][store_name] = {
            # tasks_per_claim=1 doubles as the store-level classic numbers
            # (the shape earlier trend entries ingest)
            "queue_seconds": batches["1"]["queue_seconds"],
            "protocol_overhead_ms_per_task": classic,
            "bundles": batches["1"]["bundles"],
            "tasks_per_claim": batches,
            "batching_overhead_reduction":
                classic / batched if batched > 0 else float("inf"),
        }
    return results


def _identity_log_path():
    return os.environ.get("REPRO_BENCH_SWEEP_EXEC_LOG")


def _logged_evaluate_identified_point(pair):
    """Shared task callable that ledgers each executed identity.

    Module-level so the queue can pickle it by import path; the ledger
    file (one identity per line, O_APPEND) is how the sharded-resume
    scenario *counts* recomputation instead of assuming it away.
    """
    from repro.eval.shard import evaluate_identified_point

    identity, _ = pair
    log_path = _identity_log_path()
    if log_path:
        fd = os.open(log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (identity + "\n").encode("utf-8"))
        finally:
            os.close(fd)
    return evaluate_identified_point(pair)


def _sharded_resume_bench(smoke: bool) -> dict:
    """Sharded-sweep scenario: cold submit vs resume after interruption.

    Runs one grid cold through :func:`repro.eval.shard.run_sharded_sweep`
    (plan -> ``part-*`` queues -> columnar fold -> tree aggregation),
    then stages an interrupted sweep — a *prefix* grid completed into a
    second root — and resumes the full grid there.  The gated numbers
    are the per-record cost of each path and ``recomputed``: how many
    already-published identities the resume executed again, which the
    content-addressed planner must hold at exactly zero.  The summary
    block comes from the streaming columnar reader
    (:func:`repro.eval.reporting.summarise_sweep_stream`), the same path
    ``record_trend.py --columnar`` ingests.
    """
    import tempfile

    from repro.eval import shard
    from repro.eval.columnar import iter_sweep_rows
    from repro.eval.reporting import summarise_sweep_stream

    partitions = 8
    sigmas = tuple(i / 100 for i in range(4 if smoke else 8))
    thermal = (0.0, 0.05) if smoke else (0.0, 0.05, 0.1)
    shot = (0.0,) if smoke else (0.0, 0.05)

    def make_grid(noise_sigmas):
        return SweepGrid(
            networks=("MLP-S",),
            designs=("baseline_epcm", "einsteinbarrier"),
            crossbar_sizes=(128, 256),
            wdm_capacities=(4, 16),
            noise_sigmas=noise_sigmas,
            thermal_sigmas=thermal,
            shot_factors=shot,
            noise_trials=1,
            noise_vector_length=16,
            noise_num_outputs=4,
            seed=17,
        )

    full_grid = make_grid(sigmas)
    partial_grid = make_grid(sigmas[: len(sigmas) // 2])
    total = len(full_grid.points())
    run_sweep(full_grid)  # warm the schedule/model caches

    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as root:
        start = time.perf_counter()
        cold = shard.run_sharded_sweep(full_grid, root,
                                       partitions=partitions)
        cold_seconds = time.perf_counter() - start
    assert len(cold.records) == total

    with tempfile.TemporaryDirectory(prefix="repro-bench-resume-") as root:
        # the "interrupted" sweep: a prefix of the grid already published
        shard.run_sharded_sweep(partial_grid, root, partitions=partitions)
        published = shard.columnar_store(root).published_identities()
        log_path = os.path.join(root, "resume-executions.log")
        os.environ["REPRO_BENCH_SWEEP_EXEC_LOG"] = log_path
        try:
            start = time.perf_counter()
            resumed = shard.run_sharded_sweep(
                full_grid, root, partitions=partitions,
                point_fn=_logged_evaluate_identified_point,
            )
            resume_seconds = time.perf_counter() - start
        finally:
            os.environ.pop("REPRO_BENCH_SWEEP_EXEC_LOG", None)
        with open(log_path, "r", encoding="utf-8") as handle:
            executed = [line.strip() for line in handle if line.strip()]
        recomputed = len(published.intersection(executed))
        summary = summarise_sweep_stream(
            record.to_dict()
            for _, record in iter_sweep_rows(shard.columnar_store(root))
        )

    assert resumed.records == cold.records
    assert summary["records"] == total
    return {
        "grid_points": total,
        "partitions": partitions,
        "cold_seconds": cold_seconds,
        "cold_ms_per_record": cold_seconds * 1e3 / total,
        "reused": len(published),
        "resumed_new": len(set(executed)),
        "recomputed": recomputed,
        "resume_seconds": resume_seconds,
        "resume_ms_per_record": resume_seconds * 1e3 / total,
        "stream_summary": summary,
    }


def test_sweep_subsystem(benchmark, smoke):
    """Benchmark the grid runner and record kernel + sweep numbers as JSON."""
    conv = _time_conv_kernels(smoke)
    for kernel_name, numbers in conv["kernels"].items():
        print(
            f"\nbinary_conv2d[{kernel_name}]: {numbers['seconds'] * 1e3:.1f} ms, "
            f"{numbers['speedup_vs_loop_reference']:.0f}x vs per-pixel oracle "
            f"({conv['loop_reference_seconds']:.2f} s), "
            f"{numbers['speedup_vs_prior_implementation']:.1f}x vs prior "
            f"im2col-loop path ({conv['prior_implementation_seconds'] * 1e3:.0f} ms)"
        )
    # acceptance: the vectorised path must beat the per-pixel loop >= 20x on
    # the CIFAR-scale layer (the smoke layer is far smaller, so the loop
    # overhead — and hence the margin — shrinks with it)
    floor = 5.0 if smoke else 20.0
    assert conv["kernels"]["blas"]["speedup_vs_loop_reference"] >= floor
    assert conv["kernels"]["packed"]["speedup_vs_loop_reference"] >= floor

    if smoke:
        grid = SweepGrid(networks=("MLP-S", "CNN-S"),
                         crossbar_sizes=(128, 256), wdm_capacities=(4, 16))
    else:
        grid = SweepGrid(networks=("MLP-S", "MLP-L", "CNN-S", "CNN-L"),
                         crossbar_sizes=(64, 128, 256, 512),
                         wdm_capacities=(1, 4, 16),
                         noise_sigmas=(0.0, 0.02))
    clear_sweep_caches()
    clear_schedule_cache()
    start = time.perf_counter()
    cold = run_sweep(grid)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_sweep(grid)
    warm_seconds = time.perf_counter() - start
    assert warm.records == cold.records
    # pytest-benchmark stats over the warm (fully memoised) path
    benchmark(lambda: run_sweep(grid))

    stats = schedule_cache_stats()
    print(f"\n=== Design-space sweep: {len(cold.records)} grid points ===")
    print(format_sweep_table(record.to_dict() for record in cold.records[:12]))
    print(
        f"cold {cold_seconds * 1e3:.0f} ms, warm {warm_seconds * 1e3:.0f} ms, "
        f"schedule cache: {stats['hits']} hits / {stats['misses']} misses"
    )
    # every layer schedule is built at most once per process; reuse across
    # the compiler/hierarchy/area models shows up as cache hits
    assert stats["hits"] >= stats["misses"]
    best = cold.best()
    assert best.design == "einsteinbarrier"
    assert best.speedup_vs_baseline > 1.0

    hierarchy = _hierarchy_sizing_sweep(smoke)
    print(f"\n=== Hierarchy sizing: {hierarchy['grid_points']} grid points ===")
    print(format_sweep_table(hierarchy["records"][:12]))

    fleet = _queue_fleet_bench(smoke)
    print(f"\n=== Queue fleet protocol: {fleet['grid_points']} tasks, "
          f"serial {fleet['serial_seconds'] * 1e3:.0f} ms ===")
    for store_name, numbers in fleet["stores"].items():
        print(f"  {store_name:>6} store: "
              f"{numbers['protocol_overhead_ms_per_task']:.2f} ms/task "
              f"protocol overhead (queue "
              f"{numbers['queue_seconds'] * 1e3:.0f} ms, "
              f"{numbers['bundles']} result bundle(s)); "
              f"tasks_per_claim=16 cuts it "
              f"{numbers['batching_overhead_reduction']:.1f}x to "
              f"{numbers['tasks_per_claim']['16']['protocol_overhead_ms_per_task']:.2f} ms/task")

    sharded = _sharded_resume_bench(smoke)
    print(f"\n=== Sharded resume: {sharded['grid_points']} grid points, "
          f"{sharded['partitions']} partitions ===")
    print(f"  cold  {sharded['cold_ms_per_record']:.2f} ms/record "
          f"({sharded['cold_seconds'] * 1e3:.0f} ms total); "
          f"resume reused {sharded['reused']} published rows, computed "
          f"{sharded['resumed_new']} new at "
          f"{sharded['resume_ms_per_record']:.2f} ms/record, "
          f"recomputed {sharded['recomputed']}")
    # the content-addressed planner must never re-execute a published row
    assert sharded["recomputed"] == 0

    artifact_path = SMOKE_ARTIFACT_PATH if smoke else ARTIFACT_PATH
    write_json_report(artifact_path, {
        "smoke": smoke,
        "host": host_info(),
        "conv_kernel_bench": conv,
        "sweep_grid_points": len(cold.records),
        "sweep_cold_seconds": cold_seconds,
        "sweep_warm_seconds": warm_seconds,
        "schedule_cache": stats,
        "best_point": best.to_dict(),
        "sweep": cold.to_payload(),
        "hierarchy_sweep": hierarchy,
        "queue_fleet_bench": fleet,
        "sharded_resume": sharded,
    })
    print(f"wrote {artifact_path}")
