"""Task payloads for the chaos benchmark, importable by worker subprocesses.

The queue pickles callables by import path, so the functions the
supervised fleet executes must live in a real module — worker
subprocesses receive ``benchmarks/`` on their ``PYTHONPATH`` and import
this file by name.  Keep it dependency-free: it is loaded inside bare
``python -m repro.runtime.queue`` workers.
"""

from __future__ import annotations

import random
import time


def timed_task(item):
    """Hold a lease for a fixed duration, then return a seeded token.

    ``item`` is ``(seed, duration_ms)``.  The sleep makes every task a
    window the chaos killer can land a SIGKILL in; the token is derived
    only from the seed, so a task that dies mid-sleep and re-runs on
    another worker produces the identical record.
    """
    seed, duration_ms = item
    time.sleep(float(duration_ms) / 1000.0)
    return {"seed": int(seed), "token": random.Random(int(seed)).random()}
