"""Ablation A1 + Fig. 5 concept — WDM capacity sweep.

The paper fixes K = 16 ("current technologies can support up to a capacity of
K = 16") and notes the achieved improvement stays below K for the evaluated
networks.  This bench sweeps K and reports both the step-level reduction
(Fig. 5's VMM-to-MMM folding) and the end-to-end speedup, making the gap to
the theoretical 16x visible.
"""

from __future__ import annotations

from repro.eval.ablations import sweep_wdm_capacity
from repro.eval.reporting import format_table


def test_wdm_capacity_sweep(benchmark, workloads, smoke):
    """Benchmark the K sweep on CNN-L and print speedups per capacity."""
    capacities = (1, 4, 16) if smoke else (1, 2, 4, 8, 16, 32)
    points = benchmark(
        lambda: sweep_wdm_capacity(workloads["CNN-L"], capacities=capacities)
    )
    rows = [
        [int(p.parameter), p.latency * 1e6, p.speedup_vs_baseline,
         p.energy * 1e6, p.energy_ratio_vs_baseline]
        for p in points
    ]
    print("\n=== Ablation A1: EinsteinBarrier vs WDM capacity K (CNN-L) ===")
    print(format_table(
        ["K", "latency[us]", "speedup vs baseline", "energy[uJ]",
         "energy vs baseline"],
        rows,
    ))
    speedups = [p.speedup_vs_baseline for p in points]
    latencies = [p.latency for p in points]
    # more wavelengths never hurt latency; the end-to-end gain of K=16 over
    # K=1 is well below 16x because the full-precision layers and the data
    # movement do not scale with K (the Amdahl effect Sec. VI-A observes)
    assert all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))
    assert latencies[capacities.index(16)] < latencies[0]


def test_wdm_gain_stays_below_capacity(benchmark, workloads):
    """Sec. VI-A observation 3: the technology gain stays below K = 16."""
    points = benchmark(
        lambda: sweep_wdm_capacity(workloads["CNN-M"], capacities=(1, 16))
    )
    gain = points[0].latency / points[1].latency
    print(f"\nEinsteinBarrier K=16 over K=1 on CNN-M: {gain:.1f}x (theoretical 16x)")
    assert 1.0 < gain <= 16.0
