#!/usr/bin/env python
"""Serving-layer benchmark: flush policy (max_batch x max_delay) sweep.

Drives a live :class:`repro.serving.InferenceService` with closed-loop
client threads — each submits one image, waits for its logits and
immediately submits the next — across a grid of flush policies, and
records requests/sec plus p50/p95/p99 end-to-end latency per policy into
``BENCH_serving.json`` at the repo root (``--smoke`` writes the
``BENCH_serving.smoke.json`` sibling CI uploads and gates via
``benchmarks/perf_thresholds.json``).

Policy keys are dot-free (``b8_d2000us`` = max_batch 8, max_delay 2 ms)
so the perf gate's dotted metric paths can address them.  Unlike the
pytest-benchmark suites this is a plain script — a concurrent
closed-loop benchmark has nothing useful to hand to a single-function
timing loop::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network, list_networks
from repro.eval.reporting import host_info, write_json_report
from repro.serving import InferenceService, RejectedError
from repro.utils.rng import make_rng

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: the checked-in full-run artifact; smoke runs write a sibling file so the
#: CI smoke job never clobbers the committed full-scale measurements
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")
SMOKE_ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_serving.smoke.json")

#: the acceptance grid: at least 3x3 (max_batch x max_delay_ms)
FULL_GRID_BATCH = (1, 8, 32)
FULL_GRID_DELAY_MS = (0.5, 2.0, 8.0)

FULL_NETWORK = "MLP-L"
FULL_CLIENTS = 16
FULL_REQUESTS = 2048

SMOKE_NETWORK = "MLP-S"
SMOKE_CLIENTS = 8
SMOKE_REQUESTS = 256

#: distinct synthetic images the clients cycle through
IMAGE_POOL = 128


def policy_key(max_batch: int, max_delay_ms: float) -> str:
    """Dot-free policy name (delay in whole microseconds)."""
    return f"b{max_batch}_d{int(round(max_delay_ms * 1000))}us"


class _Countdown:
    """Thread-safe shared request budget for the closed-loop clients."""

    def __init__(self, total: int) -> None:
        self._remaining = total
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


def _drive(service: InferenceService, images: np.ndarray, *,
           clients: int, total_requests: int) -> Dict[str, int]:
    """Run the closed loop to exhaustion; returns completion counters."""
    budget = _Countdown(total_requests)
    counters = {"completed": 0, "rejected": 0}
    lock = threading.Lock()

    def loop(offset: int) -> None:
        cursor = offset  # de-phase the clients across the image pool
        completed = rejected = 0
        while budget.take():
            image = images[cursor % len(images)]
            cursor += 1
            try:
                service.submit(image).result(timeout=60.0)
                completed += 1
            except RejectedError:
                rejected += 1
        with lock:
            counters["completed"] += completed
            counters["rejected"] += rejected

    threads = [threading.Thread(target=loop, args=(index,), daemon=True)
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return counters


def run_policy(engine: InferenceEngine, images: np.ndarray, *,
               max_batch: int, max_delay_ms: float, clients: int,
               total_requests: int, queue_capacity: int = 1024,
               pipeline: Optional[str] = None) -> Dict[str, object]:
    """Measure one flush policy under closed-loop load."""
    with InferenceService(engine, max_batch=max_batch,
                          max_delay_ms=max_delay_ms,
                          queue_capacity=queue_capacity,
                          pipeline=pipeline) as service:
        started = time.monotonic()
        counters = _drive(service, images, clients=clients,
                          total_requests=total_requests)
        elapsed = time.monotonic() - started
        stats = service.stats()
    latency = stats["latency_ms"]
    batches = stats["batches"]
    return {
        "max_batch": max_batch,
        "max_delay_ms": max_delay_ms,
        "clients": clients,
        "requests": total_requests,
        "completed": counters["completed"],
        "rejected": counters["rejected"],
        "elapsed_s": elapsed,
        "requests_per_s": counters["completed"] / max(elapsed, 1e-9),
        "p50_ms": latency["p50"],
        "p95_ms": latency["p95"],
        "p99_ms": latency["p99"],
        "mean_batch_occupancy": batches["mean_occupancy"],
        "batch_count": batches["count"],
        "flush_triggers": batches["flush_triggers"],
    }


def run_sweep(*, network: str, clients: int, requests: int,
              grid_batch: Sequence[int], grid_delay_ms: Sequence[float],
              smoke: bool, seed: int = 0) -> Dict[str, object]:
    """The full policy grid over one shared engine; returns the payload."""
    model = build_network(network)
    engine = InferenceEngine(model, seed=seed)
    rng = make_rng(seed)
    images = rng.uniform(-1.0, 1.0, size=(IMAGE_POOL, *model.input_shape))
    # warm the pack caches and BLAS pools outside the measured loops, and
    # pin the exactness baseline the served path must reproduce
    direct = engine.forward_batch(images, batch_size=len(images))
    direct_pred = direct.argmax(axis=1)

    policies: Dict[str, Dict[str, object]] = {}
    for max_batch in grid_batch:
        for max_delay_ms in grid_delay_ms:
            key = policy_key(max_batch, max_delay_ms)
            result = run_policy(
                engine, images, max_batch=max_batch,
                max_delay_ms=max_delay_ms, clients=clients,
                total_requests=requests,
            )
            policies[key] = result
            print(f"{key:>12s}: {result['requests_per_s']:8.1f} req/s  "
                  f"p50 {result['p50_ms']:7.2f} ms  "
                  f"p99 {result['p99_ms']:7.2f} ms  "
                  f"occupancy {result['mean_batch_occupancy']:.2f}",
                  flush=True)

    # served predictions must match the direct engine (noise-free engine,
    # one policy of each flavour) — the fine-grained property tests live
    # in tests/serving/, this is the bench's own sanity gate
    for max_batch, max_delay_ms in ((grid_batch[0], grid_delay_ms[-1]),
                                    (grid_batch[-1], grid_delay_ms[0])):
        with InferenceService(engine, max_batch=max_batch,
                              max_delay_ms=max_delay_ms) as service:
            futures = [service.submit(image) for image in images]
            served = np.stack([f.result(timeout=60.0) for f in futures])
        if not np.array_equal(served.argmax(axis=1), direct_pred):
            raise AssertionError(
                f"served predictions diverged from the direct engine under "
                f"policy b{max_batch}/d{max_delay_ms}"
            )

    best_key = max(policies, key=lambda k: policies[k]["requests_per_s"])
    best = policies[best_key]

    # re-run the winning policy with the streaming pipeline on the flush
    # path (PR 10): flushed batches are chunked and stage-overlapped
    # inside the engine instead of running one monolithic forward_batch
    pipelined = run_policy(
        engine, images, max_batch=best["max_batch"],
        max_delay_ms=best["max_delay_ms"], clients=clients,
        total_requests=requests, pipeline="on",
    )
    rps_ratio = pipelined["requests_per_s"] / max(best["requests_per_s"],
                                                  1e-9)
    print(f"{'pipelined':>12s}: {pipelined['requests_per_s']:8.1f} req/s  "
          f"p50 {pipelined['p50_ms']:7.2f} ms  "
          f"p99 {pipelined['p99_ms']:7.2f} ms  "
          f"({rps_ratio:.2f}x vs classic {best_key})",
          flush=True)

    return {
        "smoke": smoke,
        "host": host_info(),
        "network": network,
        "clients": clients,
        "requests_per_policy": requests,
        "grid": {
            "max_batch": list(grid_batch),
            "max_delay_ms": list(grid_delay_ms),
        },
        "policies": policies,
        "best": {
            "policy": best_key,
            "max_batch": best["max_batch"],
            "max_delay_ms": best["max_delay_ms"],
            "requests_per_s": best["requests_per_s"],
            "p50_ms": best["p50_ms"],
            "p99_ms": best["p99_ms"],
        },
        "pipelined_best": {
            "policy": best_key,
            "requests_per_s": pipelined["requests_per_s"],
            "p50_ms": pipelined["p50_ms"],
            "p99_ms": pipelined["p99_ms"],
            "rps_ratio_vs_classic": rps_ratio,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized configuration; writes the .smoke.json "
                             "artifact sibling")
    parser.add_argument("--network", default=None, choices=list_networks(),
                        help="override the benched workload")
    parser.add_argument("--clients", type=int, default=None,
                        help="override the closed-loop client count")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the per-policy request budget")
    parser.add_argument("--output", default=None,
                        help="override the artifact path")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the synthetic image pool")
    args = parser.parse_args(argv)

    network = args.network or (SMOKE_NETWORK if args.smoke else FULL_NETWORK)
    clients = args.clients or (SMOKE_CLIENTS if args.smoke else FULL_CLIENTS)
    requests = args.requests or (SMOKE_REQUESTS if args.smoke
                                 else FULL_REQUESTS)
    print(f"serving bench: {network}, {clients} clients, "
          f"{requests} requests/policy, "
          f"grid {len(FULL_GRID_BATCH)}x{len(FULL_GRID_DELAY_MS)}",
          flush=True)
    payload = run_sweep(
        network=network, clients=clients, requests=requests,
        grid_batch=FULL_GRID_BATCH, grid_delay_ms=FULL_GRID_DELAY_MS,
        smoke=args.smoke, seed=args.seed,
    )
    artifact = args.output or (SMOKE_ARTIFACT_PATH if args.smoke
                               else ARTIFACT_PATH)
    write_json_report(artifact, payload)
    best = payload["best"]
    print(f"best policy {best['policy']}: {best['requests_per_s']:.1f} req/s "
          f"(p99 {best['p99_ms']:.2f} ms)")
    print(f"wrote {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
