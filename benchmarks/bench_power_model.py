"""Eq. 2 and Eq. 3 — the photonic power-overhead model.

Sweeps the receiver power (Eq. 2, ``N x 2 mW``) over crossbar widths and the
transmitter power (Eq. 3) over WDM capacity K and crossbar height M, and
cross-checks the closed form against the structural transmitter model.
"""

from __future__ import annotations

import pytest

from repro.photonics.power import (
    crossbar_receiver_power,
    total_optical_overhead_power,
    transmitter_power,
)
from repro.photonics.transmitter import Transmitter, TransmitterConfig
from repro.eval.reporting import format_series


def test_equation2_receiver_power_sweep(benchmark, smoke):
    """Benchmark Eq. 2 over crossbar widths and print the series."""
    widths = [64, 256] if smoke else [64, 128, 256, 512, 1024]

    def sweep():
        return [crossbar_receiver_power(n) for n in widths]

    powers = benchmark(sweep)
    print("\n=== Eq. 2: receiver (TIA) power vs crossbar columns ===")
    print(format_series("P_crossbar [W]", widths, powers,
                        x_label="N columns", y_label="W"))
    assert powers == [n * 2e-3 for n in widths]


def test_equation3_transmitter_power_sweep(benchmark):
    """Benchmark Eq. 3 over (K, M) and print the series."""
    ks = [1, 2, 4, 8, 16]
    m = 256

    def sweep():
        return [transmitter_power(k, m) for k in ks]

    powers = benchmark(sweep)
    print("\n=== Eq. 3: transmitter power vs WDM capacity (M = 256 rows) ===")
    print(format_series("P_total [W]", ks, powers, x_label="K", y_label="W"))
    rows = [64, 128, 256, 512, 1024]
    row_powers = [transmitter_power(16, rows_m) for rows_m in rows]
    print(format_series("P_total [W]", rows, row_powers,
                        x_label="M rows (K=16)", y_label="W"))
    assert all(b >= a for a, b in zip(row_powers, row_powers[1:]))


def test_equation3_matches_structural_transmitter(benchmark):
    """The closed form of Eq. 3 agrees with the component-level transmitter."""
    rows = 256

    def both():
        structural = Transmitter(TransmitterConfig(num_rows=rows)).electrical_power()
        closed = transmitter_power(16, rows)
        return structural, closed

    structural, closed = benchmark(both)
    print(f"\nstructural transmitter power: {structural:.4f} W, Eq. 3: {closed:.4f} W")
    assert structural == pytest.approx(closed, rel=1e-9)


def test_total_overhead_at_paper_configuration(benchmark):
    """Total optical overhead of one 256x256 oPCM core at K = 16."""
    total = benchmark(lambda: total_optical_overhead_power(16, 256, 256))
    print(f"\ntotal optical overhead power (K=16, 256x256): {total:.3f} W")
    assert total > crossbar_receiver_power(256)
