#!/usr/bin/env python
"""CLI perf regression gate: compare smoke artifacts against thresholds.

Run after the smoke benchmarks (CI does this in the benchmark job)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Exits non-zero when any committed threshold in
``benchmarks/perf_thresholds.json`` is violated or its metric/artifact is
missing, printing one line per check.  See :mod:`repro.eval.perf_gate` for
the comparison semantics.

After the gate checks it prints the cross-PR trend delta — the two newest
entries of the committed ``BENCH_trend.json`` (see
``benchmarks/record_trend.py``) — so a passing-but-slipping metric is
visible in the CI log before it ever trips a threshold.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys

from repro.eval.perf_gate import check_artifacts, load_thresholds

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def _load_record_trend():
    """Import the sibling script by file location.

    benchmarks/ is not a package and this CLI is itself loaded by file
    location in the tests, so the sibling is loaded the same way instead
    of mutating the process-wide ``sys.path``.
    """
    if "record_trend" in sys.modules:
        return sys.modules["record_trend"]
    spec = importlib.util.spec_from_file_location(
        "record_trend", os.path.join(_BENCH_DIR, "record_trend.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    sys.modules["record_trend"] = module
    return module


_record_trend = _load_record_trend()
DEFAULT_TREND_PATH = _record_trend.DEFAULT_TREND_PATH
format_delta = _record_trend.format_delta
load_trend = _record_trend.load_trend

REPO_ROOT = os.path.dirname(_BENCH_DIR)
DEFAULT_THRESHOLDS = os.path.join(_BENCH_DIR, "perf_thresholds.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--thresholds", default=DEFAULT_THRESHOLDS,
        help="JSON file mapping artifact names to {metric path: minimum}",
    )
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="directory containing the benchmark artifacts",
    )
    parser.add_argument(
        "--trend", default=DEFAULT_TREND_PATH,
        help="trend file whose newest-vs-previous delta is printed",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="ARTIFACT",
        help="gate only this artifact's thresholds (repeatable); CI jobs "
             "that produce a single artifact use this so the other "
             "benchmarks' absence cannot fail their gate",
    )
    args = parser.parse_args(argv)

    spec = load_thresholds(args.thresholds)
    if args.only:
        unknown = sorted(set(args.only) - set(spec))
        if unknown:
            print(f"--only names absent from {args.thresholds}: "
                  f"{', '.join(unknown)}")
            return 2
        spec = {artifact: spec[artifact] for artifact in args.only}
    checks = check_artifacts(args.root, spec)
    for check in checks:
        print(check.describe())
    failures = [check for check in checks if not check.passed]
    status = 0
    if failures:
        print(f"\nperf gate FAILED: {len(failures)} of {len(checks)} checks")
        status = 1
    else:
        print(f"\nperf gate passed: {len(checks)} checks")
    # informational: the cross-PR trajectory (never affects the exit code)
    print()
    for line in format_delta(load_trend(args.trend)):
        print(line)
    return status


if __name__ == "__main__":
    sys.exit(main())
