#!/usr/bin/env python
"""CLI perf regression gate: compare smoke artifacts against thresholds.

Run after the smoke benchmarks (CI does this in the benchmark job)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Exits non-zero when any committed threshold in
``benchmarks/perf_thresholds.json`` is violated or its metric/artifact is
missing, printing one line per check.  See :mod:`repro.eval.perf_gate` for
the comparison semantics.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.eval.perf_gate import check_artifacts, load_thresholds

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_THRESHOLDS = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "perf_thresholds.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--thresholds", default=DEFAULT_THRESHOLDS,
        help="JSON file mapping artifact names to {metric path: minimum}",
    )
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="directory containing the benchmark artifacts",
    )
    args = parser.parse_args(argv)

    spec = load_thresholds(args.thresholds)
    checks = check_artifacts(args.root, spec)
    for check in checks:
        print(check.describe())
    failures = [check for check in checks if not check.passed]
    if failures:
        print(f"\nperf gate FAILED: {len(failures)} of {len(checks)} checks")
        return 1
    print(f"\nperf gate passed: {len(checks)} checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
