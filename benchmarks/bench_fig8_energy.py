"""Fig. 8 — normalized energy consumption over all six networks.

Regenerates Fig. 8: per-network energy of TacitMap-ePCM and EinsteinBarrier
normalised to Baseline-ePCM, and the averages quoted in the text (TacitMap
~5.35x more, EinsteinBarrier ~1.56x less).
"""

from __future__ import annotations

from repro.eval.experiments import run_fig8
from repro.eval.reporting import format_table


def test_fig8_normalized_energy(benchmark, workloads, smoke):
    """Benchmark the full Fig. 8 evaluation and print the regenerated series."""
    networks = ("MLP-L", "CNN-L") if smoke else None
    fig8 = benchmark(lambda: run_fig8(networks=networks, workloads=workloads))
    rows = []
    for result in fig8.per_network:
        rows.append([
            result.network,
            result.energy["baseline_epcm"] * 1e6,
            result.energy["tacitmap_epcm"] * 1e6,
            result.energy["einsteinbarrier"] * 1e6,
            result.energy_ratio("tacitmap_epcm"),
            result.energy_ratio("einsteinbarrier"),
        ])
    print("\n=== Fig. 8: normalized energy consumption (lower is better) ===")
    print(format_table(
        [
            "network", "Baseline-ePCM[uJ]", "TacitMap-ePCM[uJ]",
            "EinsteinBarrier[uJ]", "TacitMap/Baseline", "EinsteinBarrier/Baseline",
        ],
        rows,
    ))
    print(
        "average: TacitMap-ePCM {:.2f}x of baseline (paper ~5.35x), "
        "EinsteinBarrier {:.2f}x of baseline (paper ~0.64x)".format(
            fig8.average_ratio("tacitmap_epcm"),
            fig8.average_ratio("einsteinbarrier"),
        )
    )
    assert fig8.average_ratio("tacitmap_epcm") > 1.0
    assert (
        fig8.average_ratio("einsteinbarrier") < fig8.average_ratio("tacitmap_epcm")
    )
