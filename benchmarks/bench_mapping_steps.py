"""Fig. 3 / Sec. III claim — TacitMap needs 1 step where CustBinaryMap needs n.

Regenerates the step-count comparison between the two mappings at the
crossbar level: per-layer sequential crossbar steps under each mapping for
every evaluation network, and the theoretical per-tile ratio (bounded by the
number of weight vectors a tile holds).
"""

from __future__ import annotations

from repro.core.mapping_base import TileShape
from repro.core.schedule import build_network_schedule
from repro.eval.reporting import format_table


def test_mapping_step_counts(benchmark, workloads, smoke):
    """Benchmark schedule construction and print the per-network step counts."""
    tile = TileShape(256, 256)
    if smoke:
        workloads = {name: workloads[name] for name in ("MLP-S", "CNN-S")}

    def build_all():
        results = {}
        for name, workload in workloads.items():
            results[name] = (
                build_network_schedule(workload, mapping="custbinarymap",
                                       tile_shape=tile),
                build_network_schedule(workload, mapping="tacitmap",
                                       tile_shape=tile),
                build_network_schedule(workload, mapping="tacitmap",
                                       tile_shape=tile, wdm_capacity=16),
            )
        return results

    results = benchmark(build_all)
    rows = []
    for name, (baseline, tacit, einstein) in results.items():
        rows.append([
            name,
            baseline.total_sequential_steps,
            tacit.total_sequential_steps,
            einstein.total_sequential_steps,
            baseline.total_sequential_steps / tacit.total_sequential_steps,
            tacit.total_sequential_steps / einstein.total_sequential_steps,
        ])
    print("\n=== Sequential crossbar steps per inference (256x256 tiles) ===")
    print(format_table(
        ["network", "CustBinaryMap", "TacitMap", "TacitMap+WDM16",
         "step ratio (Sec. III)", "WDM reduction"],
        rows,
    ))
    for name, (baseline, tacit, _) in results.items():
        ratio = baseline.total_sequential_steps / tacit.total_sequential_steps
        # the per-tile bound of Sec. III: at most n (<= 256 columns) per tile
        assert 1 < ratio <= 256, name
