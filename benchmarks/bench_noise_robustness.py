"""Sec. II-C motivation — binary vs multi-level PCM robustness under noise.

The paper justifies using PCM cells in a *binary* mode (and therefore BNNs as
the workload) with the observation that multi-level read-out collapses at
realistic noise levels while binary states stay separable.  This bench sweeps
the read-noise level and reports the per-cell mis-read probability of binary
and 4-level cells together with the end-to-end TacitMap popcount error rate
on the analog crossbar model.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.eval.robustness import noise_sweep


def test_binary_vs_multilevel_robustness(benchmark, smoke):
    """Benchmark the robustness sweep and print the regenerated series."""
    sigmas = (0.0, 0.01, 0.1) if smoke else (0.0, 0.01, 0.02, 0.05, 0.1)
    vector_length = 32 if smoke else 64
    points = benchmark(
        lambda: noise_sweep(sigmas, multilevel_bits=2,
                            vector_length=vector_length, rng=0)
    )
    rows = [
        [p.read_noise_sigma, p.binary_cell_error, p.multilevel_cell_error,
         p.popcount_error]
        for p in points
    ]
    print("\n=== Binary vs multi-level PCM read-out under noise (Sec. II-C) ===")
    print(format_table(
        ["read noise sigma", "binary cell error", "4-level cell error",
         "TacitMap popcount error"],
        rows,
    ))
    for point in points:
        assert point.binary_cell_error <= point.multilevel_cell_error
    # at the realistic operating point the binary read-out is error-free
    assert points[1].binary_cell_error == 0.0
