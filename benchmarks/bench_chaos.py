#!/usr/bin/env python
"""Chaos-recovery benchmark: fleet goodput and time-to-recover under fire.

Two supervised fleet runs over the same task batch, on the dir store:

* **baseline** — a pinned fleet (``min_workers == max_workers``) drains
  the queue with no interference; its goodput is the denominator.
* **chaos** — the same fleet drains the same batch while worker
  subprocesses see seeded storage faults (``REPRO_RUNTIME_FAULTS``) and
  a killer thread SIGKILLs a random live worker on a seeded cadence.
  The supervisor — not the benchmark — restarts every casualty.

Reported under the artifact's ``chaos`` key:

* ``goodput_ratio`` — chaos tasks/s over baseline tasks/s; how much
  throughput continuous failure costs end-to-end.
* ``mean_recovery_s`` / ``max_recovery_s`` — SIGKILL to respawn, from
  greedily matching each kill timestamp to the next ``restart`` event
  in the supervisor's stream (both sides share one monotonic clock).
* ``kills`` / ``restarts`` / ``crashes`` — the casualty ledger.

Run it after the tier-1 suite (CI runs ``--smoke`` in the chaos job)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

The full run writes ``BENCH_chaos.json`` (committed); smoke writes
``BENCH_chaos.smoke.json``, gated by ``benchmarks/perf_thresholds.json``
via ``benchmarks/check_perf_regression.py``.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.eval.reporting import host_info, write_json_report
from repro.runtime.faults import FAULTS_ENV, FaultPlan
from repro.runtime.queue import (
    MAX_RETRIES_ENV,
    collect_results,
    enqueue_task,
    init_queue_dirs,
)
from repro.runtime.resilience import BackoffPolicy
from repro.runtime.supervisor import Supervisor
from repro.runtime.tasks import WorkList

import _chaos_tasks

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_chaos.json")
SMOKE_ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_chaos.smoke.json")

#: storage-fault schedule the chaos-phase workers run under; kills are
#: scheduled by the benchmark's own killer thread, not the plan
CHAOS_LATENCY = {"rate": 0.05, "min_s": 0.001, "max_s": 0.01}
CHAOS_ERRORS = {"rate": 0.03}
CHAOS_CONFLICTS = {"rate": 0.03}


def _config(smoke: bool) -> Dict[str, object]:
    if smoke:
        return {
            "tasks": 24, "task_ms": 50.0, "workers": 2, "lease_s": 1.0,
            "kill_interval_s": (0.4, 0.8), "min_kills": 2,
            "collect_timeout_s": 180.0,
        }
    return {
        "tasks": 64, "task_ms": 100.0, "workers": 2, "lease_s": 1.5,
        "kill_interval_s": (0.5, 1.0), "min_kills": 4,
        "collect_timeout_s": 420.0,
    }


class _Killer(threading.Thread):
    """SIGKILL a random live worker on a seeded cadence, keeping a log."""

    def __init__(self, supervisor: Supervisor, stop: threading.Event,
                 interval_s: Tuple[float, float], seed: int) -> None:
        super().__init__(daemon=True)
        self.supervisor = supervisor
        self.stop_event = stop
        self.interval_s = interval_s
        self.rng = random.Random(seed)
        self.kill_times: List[float] = []

    @property
    def kills(self) -> int:
        return len(self.kill_times)

    def run(self) -> None:
        while not self.stop_event.is_set():
            if self.stop_event.wait(self.rng.uniform(*self.interval_s)):
                return
            pids = self.supervisor.worker_pids()
            if not pids:
                continue
            try:
                os.kill(self.rng.choice(pids), 9)
            except (OSError, ProcessLookupError):
                continue  # the worker died on its own — still a casualty
            self.kill_times.append(time.monotonic())


def _recoveries(kill_times: List[float],
                restart_times: List[float]) -> List[float]:
    """Greedily match each kill to the next unmatched restart event."""
    samples: List[float] = []
    restarts = sorted(restart_times)
    cursor = 0
    for killed_at in sorted(kill_times):
        while cursor < len(restarts) and restarts[cursor] <= killed_at:
            cursor += 1
        if cursor >= len(restarts):
            break
        samples.append(restarts[cursor] - killed_at)
        cursor += 1
    return samples


def run_fleet(config: Dict[str, object], *, chaos: bool,
              seed: int) -> Dict[str, object]:
    """One supervised drain of the task batch; chaos adds faults + kills."""
    n_tasks = int(config["tasks"])
    items = [(seed + index, config["task_ms"]) for index in range(n_tasks)]

    worker_env = {
        "PYTHONPATH": os.pathsep.join(
            [SRC_DIR, BENCH_DIR, os.environ.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep),
        # under continuous kills a task may die many times without being
        # a poison pill; quarantining it would deadlock the collect
        MAX_RETRIES_ENV: "1000",
    }
    plan: Optional[FaultPlan] = None
    if chaos:
        plan = FaultPlan(seed=seed, latency=CHAOS_LATENCY,
                         errors=CHAOS_ERRORS, conflicts=CHAOS_CONFLICTS)
        worker_env[FAULTS_ENV] = plan.to_json()

    events: List[Dict[str, object]] = []
    events_lock = threading.Lock()

    def emit(event: Dict[str, object]) -> None:
        with events_lock:
            events.append(event)

    with tempfile.TemporaryDirectory(prefix="bench_chaos_") as tmp:
        root = os.path.join(tmp, "queue")
        init_queue_dirs(root)
        worklist = WorkList.from_items(_chaos_tasks.timed_task, items)
        for task in worklist.tasks:
            enqueue_task(root, task)

        supervisor = Supervisor(
            root,
            store="dir",
            min_workers=int(config["workers"]),
            max_workers=int(config["workers"]),
            tasks_per_worker=2,
            poll_interval_s=0.1,
            cooldown_s=0.2,
            lease_s=float(config["lease_s"]),
            worker_poll_interval_s=0.05,
            restart_backoff=BackoffPolicy(base_delay_s=0.05, max_delay_s=0.5,
                                          multiplier=3.0),
            max_restarts=1000,  # the budget benches crash-loopers, not victims
            restart_window_s=5.0,
            seed=seed,
            emit=emit,
            worker_env=worker_env,
        )
        stop = threading.Event()
        runner = threading.Thread(target=supervisor.run,
                                  kwargs={"stop": stop}, daemon=True)
        killer = None
        started_at = time.monotonic()
        runner.start()
        if chaos:
            killer = _Killer(supervisor, stop, config["kill_interval_s"],
                             seed=seed + 1)
            killer.start()
        try:
            records = collect_results(
                root, n_tasks, timeout_s=float(config["collect_timeout_s"]),
                poll_interval_s=0.05, max_retries=1000,
                maintenance_interval_s=0.25,
            )
            elapsed_s = time.monotonic() - started_at
            if killer is not None:
                # the fleet idles at min_workers after the drain, so the
                # killer keeps landing hits — wait until enough kills and
                # their restarts are on the books to measure recovery
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    enough_kills = killer.kills >= int(config["min_kills"])
                    caught_up = (supervisor.summary()["restarts"]
                                 >= killer.kills)
                    if enough_kills and caught_up:
                        break
                    time.sleep(0.05)
        finally:
            stop.set()
            if killer is not None:
                killer.join(timeout=10.0)
            runner.join(timeout=60.0)

    if runner.is_alive():
        raise RuntimeError("supervisor failed to drain")
    if len(records) != n_tasks:
        raise RuntimeError(
            f"collected {len(records)} of {n_tasks} task records"
        )

    with events_lock:
        restart_times = [float(e["t"]) for e in events
                         if e.get("event") == "restart"]
    summary = supervisor.summary()
    result: Dict[str, object] = {
        "tasks": n_tasks,
        "elapsed_s": elapsed_s,
        "goodput_tasks_per_s": n_tasks / elapsed_s,
        "kills": killer.kills if killer is not None else 0,
        "crashes": summary["crashes"],
        "restarts": summary["restarts"],
    }
    if killer is not None:
        samples = _recoveries(killer.kill_times, restart_times)
        result["recovery_samples"] = len(samples)
        if samples:
            result["mean_recovery_s"] = sum(samples) / len(samples)
            result["max_recovery_s"] = max(samples)
    if plan is not None:
        result["fault_plan"] = plan.to_dict()
    return result


def run_bench(smoke: bool, seed: int) -> Dict[str, object]:
    config = _config(smoke)
    print(f"chaos bench: {config['tasks']} tasks x {config['task_ms']}ms "
          f"on {config['workers']} supervised workers (dir store)")
    baseline = run_fleet(config, chaos=False, seed=seed)
    print(f"  baseline: {baseline['goodput_tasks_per_s']:.1f} tasks/s "
          f"({baseline['elapsed_s']:.2f}s)")
    chaos = run_fleet(config, chaos=True, seed=seed)
    chaos["goodput_ratio"] = (chaos["goodput_tasks_per_s"]
                              / baseline["goodput_tasks_per_s"])
    print(f"  chaos:    {chaos['goodput_tasks_per_s']:.1f} tasks/s "
          f"({chaos['elapsed_s']:.2f}s), ratio "
          f"{chaos['goodput_ratio']:.2f}, {chaos['kills']} kills, "
          f"{chaos['restarts']} restarts, mean recovery "
          f"{chaos.get('mean_recovery_s', float('nan')):.2f}s")
    return {
        "benchmark": "chaos_recovery",
        "smoke": smoke,
        "host": host_info(),
        "seed": seed,
        "store": "dir",
        "config": {key: list(value) if isinstance(value, tuple) else value
                   for key, value in config.items()},
        "baseline": baseline,
        "chaos": chaos,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast configuration writing BENCH_chaos.smoke.json",
    )
    parser.add_argument(
        "--output", default=None,
        help="artifact path (default: BENCH_chaos[.smoke].json at repo root)",
    )
    parser.add_argument(
        "--seed", type=int, default=20260808,
        help="seed for the fault plan, task tokens and kill cadence",
    )
    args = parser.parse_args(argv)

    payload = run_bench(args.smoke, args.seed)
    artifact = args.output or (
        SMOKE_ARTIFACT_PATH if args.smoke else ARTIFACT_PATH
    )
    write_json_report(artifact, payload)
    print(f"wrote {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
