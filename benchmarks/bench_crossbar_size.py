"""Ablation A2 — crossbar array size sweep.

The evaluation fixes 256x256 arrays; this bench shows how the speedup over
the equal-size baseline and the absolute latency move with the array size,
for both proposed designs.
"""

from __future__ import annotations

from repro.eval.ablations import sweep_crossbar_size
from repro.eval.reporting import format_table


def test_crossbar_size_sweep(benchmark, workloads, smoke):
    """Benchmark the size sweep on MLP-L for both proposed designs."""
    sizes = (64, 256) if smoke else (64, 128, 256, 512)

    def run():
        return {
            design: sweep_crossbar_size(
                workloads["MLP-L"], sizes=sizes, design=design
            )
            for design in ("tacitmap_epcm", "einsteinbarrier")
        }

    sweeps = benchmark(run)
    rows = []
    for design, points in sweeps.items():
        for point in points:
            rows.append([
                design, int(point.parameter), point.latency * 1e6,
                point.speedup_vs_baseline, point.energy_ratio_vs_baseline,
            ])
    print("\n=== Ablation A2: crossbar size sweep (MLP-L) ===")
    print(format_table(
        ["design", "array size", "latency[us]", "speedup vs baseline",
         "energy vs baseline"],
        rows,
    ))
    for design, points in sweeps.items():
        speedups = [p.speedup_vs_baseline for p in points]
        assert speedups[-1] > speedups[0], design
