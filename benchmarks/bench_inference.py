"""Batched packed inference engine: end-to-end throughput + noise curves.

Two measurements, recorded into ``BENCH_inference.json`` at the repo root
(CI uploads the smoke sibling per PR):

* end-to-end images/sec of the dense layer-by-layer forward pass vs the
  batched packed :class:`repro.bnn.model.InferenceEngine` on MLP and CNN
  workloads, with a bit-exactness check between the two paths — the packed
  engine must clear the committed speedup floors;
* accuracy-vs-read-noise curves produced *through* the packed engine
  (:func:`repro.eval.sweep.run_accuracy_sweep`), i.e. the functional
  scenario the analytical sweeps cannot provide.

Run with ``pytest benchmarks/bench_inference.py -s`` (add ``--smoke`` for
the CI-sized configuration).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network
from repro.eval.reporting import write_json_report
from repro.eval.sweep import AccuracySweepGrid, run_accuracy_sweep
from repro.utils.rng import make_rng

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: the checked-in full-run artifact; smoke runs write a sibling file so the
#: CI smoke job never clobbers the committed full-scale measurements
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_inference.json")
SMOKE_ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_inference.smoke.json")

#: packed-vs-dense end-to-end speedup floors asserted per network.  The
#: CIFAR-scale CNN must clear 5x in the committed full run; the smoke floors
#: absorb the noisy single-core CI runners.
FULL_SPEEDUP_FLOORS = {"CNN-M": 5.0, "CNN-L": 3.0, "MLP-L": 3.0}
SMOKE_SPEEDUP_FLOORS = {"CNN-M": 2.0, "MLP-S": 1.5}


def _time_network(name: str, batch: int, reps: int) -> dict:
    """Median-of-reps dense vs packed timings, bit-exactness checked."""
    model = build_network(name)
    model.eval()
    rng = make_rng(0xBEEF)
    images = rng.uniform(-1.0, 1.0, size=(batch, *model.input_shape))
    engine = InferenceEngine(model)
    # warm both paths (pack caches, BLAS thread pools, page faults)
    model.forward(images[:2])
    engine.forward_batch(images[:2], batch_size=2)
    dense_logits = model.forward(images)
    packed_logits = engine.forward_batch(images, batch_size=batch)
    bit_exact = bool(np.array_equal(dense_logits, packed_logits))

    dense_times = []
    packed_times = []
    for _ in range(reps):
        start = time.perf_counter()
        model.forward(images)
        dense_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        engine.forward_batch(images, batch_size=batch)
        packed_times.append(time.perf_counter() - start)
    dense_s = float(np.median(dense_times))
    packed_s = float(np.median(packed_times))
    return {
        "batch": batch,
        "reps": reps,
        "bit_exact": bit_exact,
        "dense_seconds": dense_s,
        "packed_seconds": packed_s,
        "dense_images_per_s": batch / dense_s,
        "packed_images_per_s": batch / packed_s,
        "speedup_vs_dense": dense_s / packed_s,
        "_engine": engine,
        "_images": images,
    }


def test_inference_engine(benchmark, smoke):
    """Benchmark the packed engine and record throughput + noise curves."""
    if smoke:
        configs = [("MLP-S", 64, 3), ("CNN-M", 8, 3)]
        floors = SMOKE_SPEEDUP_FLOORS
        accuracy_grid = AccuracySweepGrid(
            networks=("MLP-S",),
            read_noise_sigmas=(0.0, 0.005, 0.02),
            num_images=64,
            batch_size=32,
        )
    else:
        configs = [("MLP-L", 128, 5), ("CNN-M", 32, 5), ("CNN-L", 16, 5)]
        floors = FULL_SPEEDUP_FLOORS
        accuracy_grid = AccuracySweepGrid(
            networks=("MLP-S", "CNN-S"),
            technologies=("epcm", "opcm"),
            num_images=256,
            batch_size=128,
        )

    networks = {}
    bench_target = None
    for name, batch, reps in configs:
        result = _time_network(name, batch, reps)
        engine, images = result.pop("_engine"), result.pop("_images")
        if bench_target is None:
            bench_target = (engine, images, batch)
        networks[name] = result
        print(
            f"\n{name}: dense {result['dense_images_per_s']:.1f} img/s, "
            f"packed {result['packed_images_per_s']:.1f} img/s "
            f"({result['speedup_vs_dense']:.2f}x, bit-exact "
            f"{result['bit_exact']})"
        )
        assert result["bit_exact"], name
    for name, floor in floors.items():
        assert networks[name]["speedup_vs_dense"] >= floor, (
            f"{name} packed speedup {networks[name]['speedup_vs_dense']:.2f}x "
            f"below the {floor:.1f}x floor"
        )

    # pytest-benchmark stats over the packed path of the first workload
    engine, images, batch = bench_target
    benchmark(lambda: engine.predict_batch(images, batch_size=batch))

    accuracy = run_accuracy_sweep(accuracy_grid)
    print("\n=== accuracy vs read noise (packed engine) ===")
    for record in accuracy.records:
        print(
            f"  {record.network:6s} {record.technology:4s} "
            f"sigma={record.read_noise_sigma:6.3f} "
            f"acc={record.accuracy:.3f} flip={record.mean_flip_rate:.4f}"
        )
    for network in accuracy_grid.networks:
        for technology in accuracy_grid.technologies:
            curve = accuracy.curve(network, technology)
            accuracies = [acc for _, acc in curve]
            assert all(0.0 <= acc <= 1.0 for acc in accuracies)
            # noise must not *improve* accuracy beyond sampling slack
            assert accuracies[-1] <= accuracies[0] + 0.05, (network, technology)

    artifact_path = SMOKE_ARTIFACT_PATH if smoke else ARTIFACT_PATH
    write_json_report(artifact_path, {
        "smoke": smoke,
        "networks": networks,
        "accuracy_sweep": accuracy.to_payload(),
    })
    print(f"wrote {artifact_path}")
