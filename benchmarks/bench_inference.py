"""Batched packed inference engine: end-to-end throughput + noise curves.

Two measurements, recorded into ``BENCH_inference.json`` at the repo root
(CI uploads the smoke sibling per PR):

* end-to-end images/sec of the dense layer-by-layer forward pass vs the
  batched packed :class:`repro.bnn.model.InferenceEngine` on MLP and CNN
  workloads, with a bit-exactness check between the two paths — the packed
  engine must clear the committed speedup floors;
* multi-worker ``forward_batch`` throughput vs the serial chunk loop (the
  engine's per-chunk parallel seam through the :mod:`repro.runtime` thread
  backend), bit-exactness checked against the serial path;
* the shared-memory chunk transport (PR 8) vs pickled chunk shipping over
  the **process** backend — same executor, ``REPRO_RUNTIME_SHM`` toggled
  between the two timed paths, both bit-exact against the serial oracle;
* the persistent kernel-autotune cache: cold (measure + persist) vs warm
  (cache-file hit) parameter resolution against a fresh cache directory;
* the streaming packed pipeline (PR 10): serial chunk loop vs
  stage-pipelined execution (:mod:`repro.bnn.pipeline`) at the same
  chunking, bit-exactness checked, with per-stage occupancy so the
  bottleneck stage is visible in the artifact, plus a persistence check
  of the ``auto``-mode profitability decision;
* accuracy-vs-read-noise curves produced *through* the packed engine
  (:func:`repro.eval.sweep.run_accuracy_sweep`), i.e. the functional
  scenario the analytical sweeps cannot provide.

All repeated timings run through :func:`repro.runtime.measure.measure_pair`
— the same runtime layer the sweeps and the engine execute on.

Run with ``pytest benchmarks/bench_inference.py -s`` (add ``--smoke`` for
the CI-sized configuration).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.bnn import autotune
from repro.bnn.model import InferenceEngine
from repro.bnn.networks import build_network
from repro.bnn.pipeline import StreamingPipeline, plan_signature
from repro.eval.reporting import host_info, write_json_report
from repro.eval.sweep import AccuracySweepGrid, run_accuracy_sweep
from repro.runtime import ProcessExecutor, ThreadExecutor, measure_pair
from repro.runtime.shm import SHM_ENV
from repro.utils.rng import make_rng

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: the checked-in full-run artifact; smoke runs write a sibling file so the
#: CI smoke job never clobbers the committed full-scale measurements
ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_inference.json")
SMOKE_ARTIFACT_PATH = os.path.join(REPO_ROOT, "BENCH_inference.smoke.json")

#: packed-vs-dense end-to-end speedup floors asserted per network.  The
#: CIFAR-scale CNN must clear 5x in the committed full run; the smoke floors
#: absorb the noisy single-core CI runners.
FULL_SPEEDUP_FLOORS = {"CNN-M": 5.0, "CNN-L": 3.0, "MLP-L": 3.0}
SMOKE_SPEEDUP_FLOORS = {"CNN-M": 2.0, "MLP-S": 1.5}


def _time_network(name: str, batch: int, reps: int) -> dict:
    """Median-of-reps dense vs packed timings, bit-exactness checked."""
    model = build_network(name)
    model.eval()
    rng = make_rng(0xBEEF)
    images = rng.uniform(-1.0, 1.0, size=(batch, *model.input_shape))
    engine = InferenceEngine(model)
    # warm both paths (pack caches, BLAS thread pools, page faults)
    model.forward(images[:2])
    engine.forward_batch(images[:2], batch_size=2)
    dense_logits = model.forward(images)
    packed_logits = engine.forward_batch(images, batch_size=batch)
    bit_exact = bool(np.array_equal(dense_logits, packed_logits))

    packed_m, dense_m, speedup = measure_pair(
        lambda: engine.forward_batch(images, batch_size=batch),
        lambda: model.forward(images),
        reps=reps, label=name,
    )
    return {
        "batch": batch,
        "reps": reps,
        "bit_exact": bit_exact,
        "dense_seconds": dense_m.median,
        "packed_seconds": packed_m.median,
        "dense_images_per_s": dense_m.throughput(batch),
        "packed_images_per_s": packed_m.throughput(batch),
        "speedup_vs_dense": speedup,
        "_engine": engine,
        "_images": images,
    }


def _time_parallel_chunks(engine: InferenceEngine, images: np.ndarray, *,
                          workers: int, reps: int) -> dict:
    """Serial vs multi-worker per-chunk throughput of ``forward_batch``.

    Chunks fan out over the thread backend — NumPy's kernels release the
    GIL, so this measures the engine's real multi-core headroom without
    pickling the engine per chunk (the honest single-host configuration;
    CI containers may report ~1x on a single core).
    """
    total = images.shape[0]
    chunk = max(1, total // max(workers * 2, 2))
    serial_ref = engine.forward_batch(images, batch_size=chunk)
    with ThreadExecutor(workers) as executor:
        parallel_out = engine.forward_batch(images, batch_size=chunk,
                                            executor=executor)
        bit_exact = bool(np.array_equal(serial_ref, parallel_out))
        parallel_m, serial_m, speedup = measure_pair(
            lambda: engine.forward_batch(images, batch_size=chunk,
                                         executor=executor),
            lambda: engine.forward_batch(images, batch_size=chunk),
            reps=reps, label=f"chunks-x{workers}",
        )
    return {
        "backend": "thread",
        "workers": workers,
        "chunk_size": chunk,
        "bit_exact": bit_exact,
        "serial_images_per_s": serial_m.throughput(total),
        "parallel_images_per_s": parallel_m.throughput(total),
        "speedup_vs_serial": speedup,
    }


def _time_shm_transport(engine: InferenceEngine, images: np.ndarray, *,
                        workers: int, reps: int) -> dict:
    """Shared-memory vs pickled chunk transport over the process backend.

    The same :class:`ProcessExecutor` runs both timed paths; only
    ``REPRO_RUNTIME_SHM`` differs (the engine re-reads the mode on every
    ``forward_batch`` call).  Shared memory ships each input chunk as a
    descriptor and writes results into a preallocated output segment, so
    the delta is exactly the pickle + pipe traffic the transport removes.
    """
    total = images.shape[0]
    chunk = max(1, total // max(workers * 2, 2))
    serial_ref = engine.forward_batch(images, batch_size=chunk)
    previous = os.environ.get(SHM_ENV)

    def _run(mode: str, executor: ProcessExecutor) -> np.ndarray:
        os.environ[SHM_ENV] = mode
        return engine.forward_batch(images, batch_size=chunk,
                                    executor=executor)

    try:
        with ProcessExecutor(workers) as executor:
            shm_out = _run("auto", executor)
            pickle_out = _run("off", executor)
            bit_exact = bool(np.array_equal(serial_ref, shm_out)
                             and np.array_equal(serial_ref, pickle_out))
            shm_m, pickle_m, speedup = measure_pair(
                lambda: _run("auto", executor),
                lambda: _run("off", executor),
                reps=reps, label=f"shm-x{workers}",
            )
    finally:
        if previous is None:
            os.environ.pop(SHM_ENV, None)
        else:
            os.environ[SHM_ENV] = previous
    return {
        "backend": "process",
        "workers": workers,
        "chunk_size": chunk,
        "bit_exact": bit_exact,
        "pickle_images_per_s": pickle_m.throughput(total),
        "shm_images_per_s": shm_m.throughput(total),
        "speedup_vs_pickle": speedup,
    }


def _time_streaming_pipeline(name: str, total: int, chunk: int,
                             reps: int) -> dict:
    """Serial chunk loop vs the stage-pipelined path at the same chunking.

    Both arms run identical ``total / chunk`` chunk boundaries, so the
    outputs must be byte-identical; the pipelined arm additionally
    reports per-stage occupancy (busy seconds / wall) from a final
    instrumented run, which is how a reader of the artifact finds the
    bottleneck stage.
    """
    model = build_network(name)
    model.eval()
    rng = make_rng(0xFACE)
    images = rng.uniform(-1.0, 1.0, size=(total, *model.input_shape))
    engine = InferenceEngine(model)
    pipe = StreamingPipeline(engine)
    # warm both paths (pack caches, BLAS pools, thread start-up costs)
    engine.forward_batch(images, batch_size=chunk, pipeline="off")
    serial_ref = engine.forward_batch(images, batch_size=chunk,
                                      pipeline="off")
    piped, _ = pipe.run(images, chunk)
    bit_exact = bool(serial_ref.tobytes() == piped.tobytes())
    piped_m, serial_m, speedup = measure_pair(
        lambda: pipe.run(images, chunk),
        lambda: engine.forward_batch(images, batch_size=chunk,
                                     pipeline="off"),
        reps=reps, label=f"pipeline-{name}",
    )
    _, stats = pipe.run(images, chunk)
    return {
        "total_images": total,
        "chunk_size": chunk,
        "num_chunks": -(-total // chunk),
        "reps": reps,
        "bit_exact": bit_exact,
        "serial_images_per_s": serial_m.throughput(total),
        "pipelined_images_per_s": piped_m.throughput(total),
        "speedup_vs_serial": speedup,
        "stages": [stage.as_dict() for stage in stats],
        "signature": plan_signature(engine, chunk),
    }


def _pipeline_autotune_hit(signature: str, speedup: float) -> float:
    """Does a recorded pipeline decision survive a process restart?

    Records the measured verdict into a fresh cache directory, drops the
    in-process memo (the simulated restart) and reads it back — 1.0 when
    the read-back came from the cache file.  Environment and singletons
    are restored afterwards.
    """
    previous = os.environ.get(autotune.CACHE_ENV)
    with tempfile.TemporaryDirectory(prefix="repro-bench-pipeline-") as cache:
        os.environ[autotune.CACHE_ENV] = cache
        try:
            autotune.record_pipeline_decision(signature, speedup)
            autotune.reset_cached_params()
            decision = autotune.pipeline_decision(signature)
        finally:
            if previous is None:
                os.environ.pop(autotune.CACHE_ENV, None)
            else:
                os.environ[autotune.CACHE_ENV] = previous
            autotune.reset_cached_params()
    return 1.0 if decision is not None and decision["source"] == "cache" \
        else 0.0


def _autotune_stats() -> dict:
    """Cold (measure + persist) vs warm (file hit) autotune resolution.

    Points the cache at a fresh directory so the cold path genuinely
    measures; the warm re-resolve must then come back from the cache
    file.  The process-wide singleton and the environment are restored
    afterwards, so the rest of the benchmark keeps its normal params.
    """
    previous = os.environ.get(autotune.CACHE_ENV)
    with tempfile.TemporaryDirectory(prefix="repro-bench-autotune-") as cache:
        os.environ[autotune.CACHE_ENV] = cache
        try:
            start = time.perf_counter()
            measured = autotune.get_params(refresh=True)
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = autotune.get_params(refresh=True)
            warm_seconds = time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop(autotune.CACHE_ENV, None)
            else:
                os.environ[autotune.CACHE_ENV] = previous
            autotune.reset_cached_params()
    assert measured.source == "measured", measured
    assert warm == autotune.AutotuneParams(
        measured.dispatch_macs, measured.conv_block_bytes, "cache")
    return {
        "cache_hit": 1.0 if warm.source == "cache" else 0.0,
        "dispatch_macs": measured.dispatch_macs,
        "conv_block_bytes": measured.conv_block_bytes,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_cached_vs_measured":
            cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
    }


def test_inference_engine(benchmark, smoke):
    """Benchmark the packed engine and record throughput + noise curves."""
    if smoke:
        configs = [("MLP-S", 64, 3), ("CNN-M", 8, 3)]
        floors = SMOKE_SPEEDUP_FLOORS
        accuracy_grid = AccuracySweepGrid(
            networks=("MLP-S",),
            read_noise_sigmas=(0.0, 0.005, 0.02),
            num_images=64,
            batch_size=32,
        )
    else:
        configs = [("MLP-L", 128, 5), ("CNN-M", 32, 5), ("CNN-L", 16, 5)]
        floors = FULL_SPEEDUP_FLOORS
        accuracy_grid = AccuracySweepGrid(
            networks=("MLP-S", "CNN-S"),
            technologies=("epcm", "opcm"),
            num_images=256,
            batch_size=128,
        )

    networks = {}
    bench_target = None
    for name, batch, reps in configs:
        result = _time_network(name, batch, reps)
        engine, images = result.pop("_engine"), result.pop("_images")
        if bench_target is None:
            bench_target = (engine, images, batch)
        networks[name] = result
        print(
            f"\n{name}: dense {result['dense_images_per_s']:.1f} img/s, "
            f"packed {result['packed_images_per_s']:.1f} img/s "
            f"({result['speedup_vs_dense']:.2f}x, bit-exact "
            f"{result['bit_exact']})"
        )
        assert result["bit_exact"], name
    for name, floor in floors.items():
        assert networks[name]["speedup_vs_dense"] >= floor, (
            f"{name} packed speedup {networks[name]['speedup_vs_dense']:.2f}x "
            f"below the {floor:.1f}x floor"
        )

    # pytest-benchmark stats over the packed path of the first workload
    engine, images, batch = bench_target
    benchmark(lambda: engine.predict_batch(images, batch_size=batch))

    # the per-chunk parallel seam: multi-worker img/s vs the serial loop
    parallel = _time_parallel_chunks(
        engine, images, workers=2 if smoke else 4, reps=3 if smoke else 5
    )
    print(
        f"\nforward_batch chunks x{parallel['workers']} "
        f"({parallel['backend']}): serial "
        f"{parallel['serial_images_per_s']:.1f} img/s, parallel "
        f"{parallel['parallel_images_per_s']:.1f} img/s "
        f"({parallel['speedup_vs_serial']:.2f}x, bit-exact "
        f"{parallel['bit_exact']})"
    )
    assert parallel["bit_exact"]

    # the zero-copy transport: shm vs pickled chunks on the process backend
    shm = _time_shm_transport(
        engine, images, workers=2 if smoke else 4, reps=3 if smoke else 5
    )
    print(
        f"forward_batch shm x{shm['workers']} ({shm['backend']}): pickle "
        f"{shm['pickle_images_per_s']:.1f} img/s, shm "
        f"{shm['shm_images_per_s']:.1f} img/s "
        f"({shm['speedup_vs_pickle']:.2f}x, bit-exact {shm['bit_exact']})"
    )
    assert shm["bit_exact"]

    # the streaming packed pipeline: stage-overlapped vs serial chunk loop
    if smoke:
        streaming_configs = [("MLP-S", 64, 16, 3), ("CNN-M", 8, 2, 3)]
    else:
        streaming_configs = [("MLP-L", 128, 32, 5), ("CNN-M", 32, 8, 5),
                             ("CNN-L", 16, 4, 5)]
    streaming_networks = {}
    for name, total, chunk, reps in streaming_configs:
        result = _time_streaming_pipeline(name, total, chunk, reps)
        streaming_networks[name] = result
        occupancy = ", ".join(
            f"{stage['name']} {stage['occupancy']:.2f}"
            for stage in result["stages"]
        )
        print(
            f"streaming {name}: serial "
            f"{result['serial_images_per_s']:.1f} img/s, pipelined "
            f"{result['pipelined_images_per_s']:.1f} img/s "
            f"({result['speedup_vs_serial']:.2f}x, bit-exact "
            f"{result['bit_exact']}; occupancy {occupancy})"
        )
        assert result["bit_exact"], name
    best_name = max(streaming_networks,
                    key=lambda n: streaming_networks[n]["speedup_vs_serial"])
    best = streaming_networks[best_name]
    autotune_hit = _pipeline_autotune_hit(
        best["signature"], best["speedup_vs_serial"])
    print(
        f"streaming best: {best_name} "
        f"{best['speedup_vs_serial']:.2f}x (autotune cache hit "
        f"{autotune_hit:.0f})"
    )
    assert autotune_hit == 1.0
    streaming = {
        "networks": streaming_networks,
        "best_network": best_name,
        "speedup_vs_serial": best["speedup_vs_serial"],
        "autotune_hit": autotune_hit,
    }

    tune = _autotune_stats()
    print(
        f"autotune: dispatch {tune['dispatch_macs']} MACs, conv block "
        f"{tune['conv_block_bytes'] // (1 << 20)} MiB; cold "
        f"{tune['cold_seconds'] * 1e3:.1f} ms, warm "
        f"{tune['warm_seconds'] * 1e3:.1f} ms "
        f"(cache hit {tune['cache_hit']:.0f})"
    )
    assert tune["cache_hit"] == 1.0

    accuracy = run_accuracy_sweep(accuracy_grid)
    print("\n=== accuracy vs read noise (packed engine) ===")
    for record in accuracy.records:
        print(
            f"  {record.network:6s} {record.technology:4s} "
            f"sigma={record.read_noise_sigma:6.3f} "
            f"acc={record.accuracy:.3f} flip={record.mean_flip_rate:.4f}"
        )
    for network in accuracy_grid.networks:
        for technology in accuracy_grid.technologies:
            curve = accuracy.curve(network, technology)
            accuracies = [acc for _, acc in curve]
            assert all(0.0 <= acc <= 1.0 for acc in accuracies)
            # noise must not *improve* accuracy beyond sampling slack
            assert accuracies[-1] <= accuracies[0] + 0.05, (network, technology)

    artifact_path = SMOKE_ARTIFACT_PATH if smoke else ARTIFACT_PATH
    write_json_report(artifact_path, {
        "smoke": smoke,
        "host": host_info(),
        "networks": networks,
        "parallel_forward_batch": parallel,
        "shm_transport": shm,
        "streaming_pipeline": streaming,
        "autotune": tune,
        "accuracy_sweep": accuracy.to_payload(),
    })
    print(f"wrote {artifact_path}")
