"""Shared fixtures for the benchmark harness (one bench per figure/equation).

Smoke mode
----------
``pytest benchmarks/bench_*.py --smoke`` (or ``REPRO_BENCH_SMOKE=1``)
switches every bench to a fast configuration: pytest-benchmark timing loops
collapse to a single round and the benches shrink their sweep grids via the
``smoke`` fixture.  CI runs the smoke configuration on every PR and uploads
the JSON artifacts so the perf trajectory stays tracked without paying
full-sweep cost per push.
"""

from __future__ import annotations

import os

import pytest

from repro.bnn.networks import list_networks
from repro.bnn.workload import get_workload

#: environment switch equivalent to the --smoke CLI flag
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="fast smoke mode: tiny sweep grids and a single run per bench",
    )


def smoke_enabled(config) -> bool:
    """Whether smoke mode is requested via --smoke or REPRO_BENCH_SMOKE."""
    if config.getoption("--smoke", default=False):
        return True
    return os.environ.get(SMOKE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def pytest_configure(config):
    if smoke_enabled(config):
        # clamp the timing loop to a single uncalibrated round so each bench
        # body runs ~once while --benchmark-json output stays populated
        config.option.benchmark_min_rounds = 1
        config.option.benchmark_max_time = 0.0
        # the parsed (not CLI-string) value: parse_warmup("off") -> False
        config.option.benchmark_warmup = False
        config.option.benchmark_calibration_precision = 1


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when the suite runs in fast smoke mode."""
    return smoke_enabled(request.config)


@pytest.fixture(scope="session")
def workloads():
    """Workloads of all six evaluation networks (memoised extraction)."""
    return {name: get_workload(name) for name in list_networks()}
