"""Shared fixtures for the benchmark harness (one bench per figure/equation)."""

from __future__ import annotations

import pytest

from repro.bnn.networks import build_network, list_networks
from repro.bnn.workload import extract_workload


@pytest.fixture(scope="session")
def workloads():
    """Workloads of all six evaluation networks, extracted once per session."""
    return {name: extract_workload(build_network(name)) for name in list_networks()}
