#!/usr/bin/env python
"""Cross-PR benchmark trend recorder.

Extracts the key metrics of the committed benchmark artifacts — conv-kernel
speedups and the dir/object queue-store protocol overheads from
``BENCH_sweep.json``, end-to-end packed img/s and speedups plus the
multi-worker chunk seam from ``BENCH_inference.json``, the serving
layer's per-flush-policy req/s + latency percentiles from
``BENCH_serving.json``, and the fleet's goodput-under-faults ratio and
recovery times from ``BENCH_chaos.json`` — and
appends them as one labelled entry to ``BENCH_trend.json``.  The trend file
is committed, so the performance trajectory of the repository is diffable
PR-over-PR, and ``benchmarks/check_perf_regression.py`` prints the delta of
the two newest entries after its gate checks.

Run after regenerating the full benchmarks::

    PYTHONPATH=src python benchmarks/record_trend.py --label pr-3

CI runs it against the smoke artifacts into a separate (uncommitted)
``BENCH_trend.smoke.json`` so the committed full-run trend is never
polluted with single-core smoke numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Mapping, Optional

from repro.eval.perf_gate import resolve_metric
from repro.eval.reporting import write_json_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_TREND_PATH = os.path.join(REPO_ROOT, "BENCH_trend.json")
SMOKE_TREND_PATH = os.path.join(REPO_ROOT, "BENCH_trend.smoke.json")

#: metric name -> (artifact key, dotted path inside the artifact payload).
#: Every metric is optional per entry — artifacts evolve across PRs, and the
#: delta printer only compares metrics both entries carry.
TREND_METRICS = {
    "conv_blas_speedup_vs_loop": (
        "sweep", "conv_kernel_bench.kernels.blas.speedup_vs_loop_reference"),
    "conv_packed_speedup_vs_loop": (
        "sweep", "conv_kernel_bench.kernels.packed.speedup_vs_loop_reference"),
    "sweep_warm_seconds": ("sweep", "sweep_warm_seconds"),
    "parallel_chunk_speedup": (
        "inference", "parallel_forward_batch.speedup_vs_serial"),
    "queue_overhead_ms_per_task_dir": (
        "sweep",
        "queue_fleet_bench.stores.dir.protocol_overhead_ms_per_task"),
    "queue_overhead_ms_per_task_object": (
        "sweep",
        "queue_fleet_bench.stores.object.protocol_overhead_ms_per_task"),
    "queue_overhead_ms_per_task_batched_dir": (
        "sweep",
        "queue_fleet_bench.stores.dir.tasks_per_claim.16"
        ".protocol_overhead_ms_per_task"),
    "queue_overhead_ms_per_task_batched_object": (
        "sweep",
        "queue_fleet_bench.stores.object.tasks_per_claim.16"
        ".protocol_overhead_ms_per_task"),
    "shm_chunk_speedup": ("inference", "shm_transport.speedup_vs_pickle"),
    "autotune_cache_hit": ("inference", "autotune.cache_hit"),
    "streaming_pipeline_speedup": (
        "inference", "streaming_pipeline.speedup_vs_serial"),
    "pipeline_autotune_hit": ("inference", "streaming_pipeline.autotune_hit"),
    "serving_best_rps": ("serving", "best.requests_per_s"),
    "serving_best_p50_ms": ("serving", "best.p50_ms"),
    "serving_best_p99_ms": ("serving", "best.p99_ms"),
    "chaos_goodput_ratio": ("chaos", "chaos.goodput_ratio"),
    "chaos_mean_recovery_s": ("chaos", "chaos.mean_recovery_s"),
    "chaos_max_recovery_s": ("chaos", "chaos.max_recovery_s"),
    "chaos_restarts": ("chaos", "chaos.restarts"),
    "sharded_cold_ms_per_record": (
        "sweep", "sharded_resume.cold_ms_per_record"),
    "sharded_resume_ms_per_record": (
        "sweep", "sharded_resume.resume_ms_per_record"),
    "sharded_resume_recomputed": ("sweep", "sharded_resume.recomputed"),
}

#: per-network end-to-end metrics pulled from the inference artifact
NETWORK_METRICS = ("packed_images_per_s", "speedup_vs_dense")

#: per-flush-policy metrics pulled from the serving artifact
SERVING_POLICY_METRICS = ("requests_per_s", "p50_ms", "p99_ms")


def _git_label() -> str:
    """Short commit hash of HEAD, or ``"local"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True, timeout=10,
        )
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def _load_artifact(path: str) -> Optional[Mapping[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def extract_metrics(sweep: Optional[Mapping[str, object]],
                    inference: Optional[Mapping[str, object]],
                    serving: Optional[Mapping[str, object]] = None,
                    chaos: Optional[Mapping[str, object]] = None,
                    ) -> Dict[str, float]:
    """Flatten the tracked metrics out of the benchmark artifacts."""
    artifacts = {"sweep": sweep, "inference": inference, "serving": serving,
                 "chaos": chaos}
    metrics: Dict[str, float] = {}
    for name, (artifact_key, dotted) in TREND_METRICS.items():
        payload = artifacts[artifact_key]
        if payload is None:
            continue
        value = resolve_metric(payload, dotted)
        if value is not None:
            metrics[name] = value
    networks = (inference or {}).get("networks")
    if isinstance(networks, Mapping):
        for network in sorted(networks):
            for metric in NETWORK_METRICS:
                value = resolve_metric(networks, f"{network}.{metric}")
                if value is not None:
                    metrics[f"{network}.{metric}"] = value
    policies = (serving or {}).get("policies")
    if isinstance(policies, Mapping):
        for policy in sorted(policies):
            for metric in SERVING_POLICY_METRICS:
                value = resolve_metric(policies, f"{policy}.{metric}")
                if value is not None:
                    metrics[f"serving.{policy}.{metric}"] = value
    return metrics


def columnar_metrics(root: str) -> Dict[str, float]:
    """Stream a sweep's columnar store into trend metrics.

    Consumes the streaming reader (one segment in memory at a time) via
    :func:`repro.eval.reporting.summarise_sweep_stream`, so recording a
    trend entry for a 10^7-row sweep never materialises the record set.
    """
    from repro.eval.columnar import ColumnarStore, iter_sweep_rows
    from repro.eval.reporting import summarise_sweep_stream

    store = ColumnarStore(root)
    summary = summarise_sweep_stream(
        record.to_dict() for _, record in iter_sweep_rows(store)
    )
    metrics = {"columnar.records": float(summary["records"])}
    for name in ("best_speedup_vs_baseline", "mean_speedup_vs_baseline",
                 "mean_latency_s"):
        value = summary.get(name)
        if isinstance(value, (int, float)):
            metrics[f"columnar.{name}"] = float(value)
    return metrics


def load_trend(path: str) -> List[Dict[str, object]]:
    """Load the entry list of a trend file (empty when absent/corrupt)."""
    payload = _load_artifact(path)
    if payload is None:
        return []
    entries = payload.get("entries")
    if not isinstance(entries, list):
        return []
    return [entry for entry in entries if isinstance(entry, dict)]


def append_entry(path: str, entry: Dict[str, object]) -> List[Dict[str, object]]:
    """Append (or replace the same-label tail entry of) the trend file."""
    entries = load_trend(path)
    if entries and entries[-1].get("label") == entry["label"]:
        # re-running the recorder on the same commit refreshes that entry
        # instead of stuttering the trend
        entries[-1] = entry
    else:
        entries.append(entry)
    write_json_report(path, {"entries": entries})
    return entries


def format_delta(entries: List[Mapping[str, object]]) -> List[str]:
    """Human-readable delta of the two newest trend entries."""
    if not entries:
        return ["trend: no entries recorded yet"]
    current = entries[-1]
    lines = [f"trend: {len(entries)} entries, newest {current.get('label')!r}"]
    metrics = current.get("metrics")
    if not isinstance(metrics, Mapping):
        return lines
    previous: Mapping[str, object] = {}
    if len(entries) >= 2:
        maybe = entries[-2].get("metrics")
        if isinstance(maybe, Mapping):
            previous = maybe
        lines.append(
            f"delta vs previous entry {entries[-2].get('label')!r}:"
        )
    for name in sorted(metrics):
        value = metrics[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        prior = previous.get(name)
        if isinstance(prior, (int, float)) and not isinstance(prior, bool) \
                and prior != 0:
            change = 100.0 * (float(value) - float(prior)) / float(prior)
            lines.append(f"  {name}: {value:.3f} ({change:+.1f}% vs {prior:.3f})")
        else:
            lines.append(f"  {name}: {value:.3f} (new metric)")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sweep", default=os.path.join(REPO_ROOT, "BENCH_sweep.json"),
        help="sweep benchmark artifact to read",
    )
    parser.add_argument(
        "--inference", default=os.path.join(REPO_ROOT, "BENCH_inference.json"),
        help="inference benchmark artifact to read",
    )
    parser.add_argument(
        "--serving", default=os.path.join(REPO_ROOT, "BENCH_serving.json"),
        help="serving benchmark artifact to read",
    )
    parser.add_argument(
        "--chaos", default=os.path.join(REPO_ROOT, "BENCH_chaos.json"),
        help="chaos-recovery benchmark artifact to read",
    )
    parser.add_argument(
        "--trend", default=None,
        help="trend file to append to (default: the committed "
             "BENCH_trend.json, or BENCH_trend.smoke.json under --smoke "
             "so smoke metrics can never pollute the committed trend)",
    )
    parser.add_argument(
        "--label", default=None,
        help="entry label (default: the short git commit hash)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="read the *.smoke.json artifact siblings instead",
    )
    parser.add_argument(
        "--columnar", default=None, metavar="ROOT",
        help="also stream a sharded sweep's columnar store (the "
             "<sweep-root>/columnar directory) into columnar.* metrics",
    )
    args = parser.parse_args(argv)

    trend_path = args.trend
    if trend_path is None:
        trend_path = SMOKE_TREND_PATH if args.smoke else DEFAULT_TREND_PATH
    sweep_path, inference_path = args.sweep, args.inference
    serving_path, chaos_path = args.serving, args.chaos
    if args.smoke:
        sweep_path = sweep_path.replace(".json", ".smoke.json")
        inference_path = inference_path.replace(".json", ".smoke.json")
        serving_path = serving_path.replace(".json", ".smoke.json")
        chaos_path = chaos_path.replace(".json", ".smoke.json")
    sweep = _load_artifact(sweep_path)
    inference = _load_artifact(inference_path)
    serving = _load_artifact(serving_path)
    chaos = _load_artifact(chaos_path)
    if sweep is None and inference is None and serving is None \
            and chaos is None:
        print(f"no artifacts found at {sweep_path} / {inference_path} / "
              f"{serving_path} / {chaos_path}")
        return 1
    metrics = extract_metrics(sweep, inference, serving, chaos)
    if args.columnar:
        metrics.update(columnar_metrics(args.columnar))
    if not metrics:
        print("artifacts carried none of the tracked metrics")
        return 1
    entry: Dict[str, object] = {
        "label": args.label or _git_label(),
        "smoke": bool(args.smoke or (sweep or {}).get("smoke")
                      or (inference or {}).get("smoke")
                      or (serving or {}).get("smoke")
                      or (chaos or {}).get("smoke")),
        "metrics": metrics,
    }
    entries = append_entry(trend_path, entry)
    for line in format_delta(entries):
        print(line)
    print(f"wrote {trend_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
