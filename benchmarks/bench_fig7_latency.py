"""Fig. 7 — normalized latency improvements over all six networks.

Regenerates the series of Fig. 7: per-network latency improvement of
TacitMap-ePCM and EinsteinBarrier normalised to Baseline-ePCM, plus the
Baseline-GPU reference, and the average/max ("up to") numbers quoted in the
abstract.  Run with ``pytest benchmarks/bench_fig7_latency.py --benchmark-only -s``.
"""

from __future__ import annotations

from repro.eval.experiments import headline_numbers, run_fig7
from repro.eval.reporting import format_table


def _fig7_rows(fig7):
    rows = []
    for result in fig7.per_network:
        rows.append([
            result.network,
            result.latency["baseline_epcm"] * 1e6,
            result.latency["tacitmap_epcm"] * 1e6,
            result.latency["einsteinbarrier"] * 1e6,
            result.latency["gpu"] * 1e6,
            result.latency_improvement("tacitmap_epcm"),
            result.latency_improvement("einsteinbarrier"),
            result.latency["baseline_epcm"] / result.latency["gpu"],
        ])
    return rows


def test_fig7_normalized_latency(benchmark, workloads, smoke):
    """Benchmark the full Fig. 7 evaluation and print the regenerated series."""
    networks = ("MLP-L", "CNN-S") if smoke else None
    fig7 = benchmark(lambda: run_fig7(networks=networks, workloads=workloads))
    table = format_table(
        [
            "network", "Baseline-ePCM[us]", "TacitMap-ePCM[us]",
            "EinsteinBarrier[us]", "GPU[us]",
            "TacitMap speedup", "EinsteinBarrier speedup", "Baseline/GPU",
        ],
        _fig7_rows(fig7),
    )
    numbers = headline_numbers(fig7=fig7)
    print("\n=== Fig. 7: normalized latency improvement over Baseline-ePCM ===")
    print(table)
    print(
        "TacitMap-ePCM: avg ~{:.0f}x (paper ~78x), max ~{:.0f}x (paper ~154x)".format(
            numbers["tacitmap_avg"], numbers["tacitmap_max"]
        )
    )
    print(
        "EinsteinBarrier: avg ~{:.0f}x (paper ~1205x), max ~{:.0f}x (paper ~3113x), "
        "min ~{:.0f}x (paper ~22x)".format(
            numbers["einsteinbarrier_avg"], numbers["einsteinbarrier_max"],
            numbers["einsteinbarrier_min"],
        )
    )
    print(
        "EinsteinBarrier over TacitMap-ePCM: ~{:.1f}x (paper ~15x)".format(
            numbers["einsteinbarrier_over_tacitmap"]
        )
    )
    # structural assertions so the bench fails loudly if the shape regresses
    assert all(x > 1 for x in fig7.improvements("tacitmap_epcm"))
    assert all(x > 1 for x in fig7.improvements("einsteinbarrier"))
    gpu_ratio = fig7.gpu_vs_baseline()
    assert gpu_ratio["CNN-S"] < 1.0 < gpu_ratio["MLP-L"]
