"""Ablation A3 — ADC sharing (footnote 1 of Sec. IV).

The paper's concept figures assume every column can be read out in parallel
(a private ADC per column) and promise to revisit the assumption.  This bench
sweeps how many columns share one ADC for TacitMap-ePCM and EinsteinBarrier
and reports the latency cost of sharing.
"""

from __future__ import annotations

from repro.eval.ablations import sweep_adc_sharing
from repro.eval.reporting import format_table


def test_adc_sharing_sweep(benchmark, workloads, smoke):
    """Benchmark the columns-per-ADC sweep on CNN-M."""
    shares = (1, 8) if smoke else (1, 2, 4, 8, 16, 32)

    def run():
        return {
            design: sweep_adc_sharing(
                workloads["CNN-M"], columns_per_adc=shares, design=design
            )
            for design in ("tacitmap_epcm", "einsteinbarrier")
        }

    sweeps = benchmark(run)
    rows = []
    for design, points in sweeps.items():
        for point in points:
            rows.append([
                design, int(point.parameter), point.latency * 1e6,
                point.speedup_vs_baseline,
            ])
    print("\n=== Ablation A3: columns per ADC (CNN-M) ===")
    print(format_table(
        ["design", "columns/ADC", "latency[us]", "speedup vs baseline"], rows
    ))
    for design, points in sweeps.items():
        latencies = [p.latency for p in points]
        assert latencies == sorted(latencies), design
